"""The admission service: device registry + sharded decision pipelines.

:class:`AdmissionService` is the process-level object the HTTP layer
(and in-process clients like the load harness) talk to: it owns
``shards`` independent :class:`~repro.service.engine.BatchEngine`
pipelines, routes every request to its device's owning shard
(rendezvous hashing — see :mod:`repro.service.sharding`), and shares
one :class:`~repro.service.metrics.ServiceMetrics` across them.

``batching=False`` turns the service into the per-request serial
baseline (every request decided individually through
``BatchEngine.process_serial``) — same API, no coalescing, no
certifier, no kernels.  The load harness measures the micro-batched
pipeline against exactly this.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.fpga.device import Fpga
from repro.service.batcher import BatchConfig, MicroBatcher
from repro.service.engine import BatchEngine
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import Decision, Request, task_to_json
from repro.service.sharding import ShardRouter


class AdmissionService:
    """Front door over one or more sharded micro-batch pipelines."""

    def __init__(
        self,
        *,
        config: Optional[BatchConfig] = None,
        shards: int = 1,
        backend: Optional[str] = None,
        use_certifier: bool = True,
        batching: bool = True,
    ) -> None:
        self.config = config if config is not None else BatchConfig()
        self.metrics = ServiceMetrics()
        self.batching = batching
        self.router = ShardRouter(shards)
        self.engines = [
            BatchEngine(backend=backend, use_certifier=use_certifier, metrics=self.metrics)
            for _ in range(shards)
        ]
        self.batchers = [
            MicroBatcher(engine.process_batch, self.config, self.metrics)
            for engine in self.engines
        ]
        self._started = False

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        if self._started:
            raise RuntimeError("service already started")
        # Claim the flag before the first await so a concurrent start()
        # fails fast instead of double-starting the batchers (RL013);
        # roll back if any batcher refuses to come up.
        self._started = True
        if self.batching:
            try:
                for batcher in self.batchers:
                    await batcher.start()
            except BaseException:
                self._started = False
                raise

    async def close(self) -> None:
        if not self._started:
            return
        # Flip the flag before suspending so a concurrent close() is a
        # no-op instead of double-closing the batchers (RL013).
        self._started = False
        if self.batching:
            for batcher in self.batchers:
                await batcher.close()

    # -- device registry -------------------------------------------------------

    def _engine_for(self, device: str) -> BatchEngine:
        return self.engines[self.router.shard_of(device)]

    def create_device(self, name: str, width: int) -> Dict[str, Any]:
        """Register a ``width``-column device; returns its info dict."""
        fpga = Fpga(width=width)
        self._engine_for(name).add_device(name, fpga)
        return self.device_info(name)

    def has_device(self, name: str) -> bool:
        return name in self._engine_for(name).devices

    def device_info(self, name: str) -> Dict[str, Any]:
        """Resident tasks + metadata (the transferable device state)."""
        dev = self._engine_for(name).device(name)
        return {
            "name": name,
            "width": dev.fpga.width,
            "capacity": dev.fpga.capacity,
            "shard": self.router.shard_of(name),
            "version": dev.state.version,
            "resident": len(dev.state),
            "tasks": [task_to_json(t) for t in dev.state.tasks],
        }

    def list_devices(self) -> List[Dict[str, Any]]:
        out = []
        for engine in self.engines:
            for name in engine.devices:
                out.append(self.device_info(name))
        return sorted(out, key=lambda d: d["name"])

    # -- decisions -------------------------------------------------------------

    async def submit(self, request: Request) -> Decision:
        """Decide one request (micro-batched, or serial per-request when
        ``batching=False``)."""
        if not self._started:
            raise RuntimeError("service is not started")
        shard = self.router.shard_of(request.device)
        if self.batching:
            return await self.batchers[shard].submit(request)
        return self.engines[shard].process_serial([request])[0]

    def snapshot(self) -> Dict[str, Any]:
        """Service-level metrics (``GET /v1/metrics``)."""
        snap = self.metrics.snapshot()
        snap["shards"] = len(self.engines)
        snap["devices"] = sum(len(e.devices) for e in self.engines)
        snap["batching"] = self.batching
        return snap
