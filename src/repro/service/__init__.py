"""Online admission-control service over the incremental analyzers.

The service layer turns :class:`~repro.incremental.AdmissionState` into
a long-running, concurrent admission endpoint without giving up the
repo's central contract: **every decision is bit-identical to a serial
replay of the same per-device request order**.  The pieces:

- :mod:`repro.service.protocol` — wire types (``Request``/``Decision``)
  and JSON parsing.
- :mod:`repro.service.engine` — the decision core: certifier fast path,
  speculative per-device chains, residual exact reruns grouped by
  device shape into single vectorized kernel calls.
- :mod:`repro.service.batcher` — asyncio micro-batching (size- and
  latency-bounded window).
- :mod:`repro.service.sharding` — rendezvous device→shard routing and
  the multi-process scale-out story.
- :mod:`repro.service.app` / :mod:`repro.service.http` — the service
  object and its stdlib HTTP/1.1 front (``repro-service`` CLI).
- :mod:`repro.service.metrics` — decisions/sec inputs, batch-size
  histogram, certifier hit rate, latency percentiles.
"""

from repro.service.app import AdmissionService
from repro.service.batcher import BatchConfig, MicroBatcher
from repro.service.engine import BatchEngine, DeviceEngine
from repro.service.http import HttpServer
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import (
    Decision,
    ProtocolError,
    Request,
    parse_request,
    parse_task,
)
from repro.service.sharding import ShardRouter, rendezvous_shard

__all__ = [
    "AdmissionService",
    "BatchConfig",
    "BatchEngine",
    "Decision",
    "DeviceEngine",
    "HttpServer",
    "MicroBatcher",
    "ProtocolError",
    "Request",
    "ServiceMetrics",
    "ShardRouter",
    "parse_request",
    "parse_task",
    "rendezvous_shard",
]
