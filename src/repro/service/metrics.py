"""Service counters: decisions, batching behaviour, certifier hits.

Plain in-process counters (no clock reads — latencies are *observed*
here, measured by the batcher against :mod:`repro.service.clock`).
Everything lands in one :meth:`ServiceMetrics.snapshot` dict, which is
what ``GET /v1/metrics`` serves and what the bench harness records into
the benchmark JSON ``extra_info``.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Any, Deque, Dict, List

from repro.service.protocol import Decision

#: Ring-buffer size for latency percentiles (recent-window estimate).
LATENCY_WINDOW = 8192


def percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 1]) of pre-sorted values."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, max(0, int(q * len(sorted_values))))
    return sorted_values[rank]


class ServiceMetrics:
    """Mutable counters shared by the engine, batcher and HTTP layer."""

    def __init__(self) -> None:
        self.decisions_total = 0
        self.accepted_total = 0
        self.errors_total = 0
        self.by_op: Counter = Counter()
        self.by_via: Counter = Counter()
        self.batches_total = 0
        self.batch_sizes: Counter = Counter()  # size -> count (histogram)
        self.rounds_total = 0
        self.kernel_calls_total = 0
        self.kernel_rows_total = 0
        self.certifier_certified = 0
        self.certifier_unknown = 0
        self.requests_in_flight = 0
        self._latencies: Deque[float] = deque(maxlen=LATENCY_WINDOW)

    # -- observations ----------------------------------------------------------

    def observe_decision(self, decision: Decision) -> None:
        self.decisions_total += 1
        self.by_op[decision.op] += 1
        self.by_via[decision.via] += 1
        if decision.error is not None:
            self.errors_total += 1
        elif decision.ok and decision.op in ("add", "trial"):
            self.accepted_total += 1

    def observe_latency(self, seconds: float) -> None:
        """Queue-to-decision latency of one request (batcher-measured)."""
        self._latencies.append(seconds)

    def observe_batch(self, size: int, rounds: int, kernel_calls: int, kernel_rows: int) -> None:
        self.batches_total += 1
        self.batch_sizes[size] += 1
        self.rounds_total += rounds
        self.kernel_calls_total += kernel_calls
        self.kernel_rows_total += kernel_rows

    def observe_certifier(self, certified: int, unknown: int) -> None:
        """Accumulate one :class:`DeltaCertifier`'s stats delta."""
        self.certifier_certified += certified
        self.certifier_unknown += unknown

    # -- derived ---------------------------------------------------------------

    @property
    def certifier_hit_rate(self) -> float:
        total = self.certifier_certified + self.certifier_unknown
        return self.certifier_certified / total if total else 0.0

    @property
    def mean_batch_size(self) -> float:
        n = sum(self.batch_sizes.values())
        total = sum(size * count for size, count in self.batch_sizes.items())
        return total / n if n else 0.0

    def latency_percentiles(self) -> Dict[str, float]:
        values = sorted(self._latencies)
        return {
            "p50": percentile(values, 0.50),
            "p90": percentile(values, 0.90),
            "p99": percentile(values, 0.99),
        }

    def snapshot(self) -> Dict[str, Any]:
        """One JSON-ready dict with every counter and derived rate."""
        return {
            "decisions_total": self.decisions_total,
            "accepted_total": self.accepted_total,
            "errors_total": self.errors_total,
            "by_op": dict(self.by_op),
            "by_via": dict(self.by_via),
            "batches_total": self.batches_total,
            "batch_size_histogram": {
                str(size): count for size, count in sorted(self.batch_sizes.items())
            },
            "mean_batch_size": self.mean_batch_size,
            "rounds_total": self.rounds_total,
            "kernel_calls_total": self.kernel_calls_total,
            "kernel_rows_total": self.kernel_rows_total,
            "certifier": {
                "certified": self.certifier_certified,
                "unknown": self.certifier_unknown,
                "hit_rate": self.certifier_hit_rate,
            },
            "requests_in_flight": self.requests_in_flight,
            "latency_seconds": self.latency_percentiles(),
        }
