"""Consistent device→worker routing, and the scale-out story.

**In one process.**  Devices are disjoint — requests for different
devices touch disjoint ``AdmissionState``s and commute — so the service
partitions its device registry over ``shards`` independent pipelines
(one :class:`~repro.service.engine.BatchEngine` behind one
:class:`~repro.service.batcher.MicroBatcher` each).  Routing is
**rendezvous (highest-random-weight) hashing** on the device name:
deterministic, uniform, and minimally disruptive — resizing from ``k``
to ``k+1`` shards remaps only ``~1/(k+1)`` of the devices, and every
router instance (in any process, any language with blake2b) agrees on
the owner without coordination or a lookup table.

**Beyond one process.**  The same routing function is the multi-process
scale-out plan, written down here because one CPython process is
ultimately serialized through one interpreter lock:

1. Run ``W`` worker processes (``repro-service --port p_i``), each an
   identical service; a worker *owns* the devices
   ``rendezvous_shard(name, W) == i`` and rejects the rest, so every
   device's request stream stays serialized through exactly one
   pipeline — the batch-parity contract needs nothing more.
2. Any stateless front (an L7 proxy, a client library, DNS-free
   static config) routes by computing the same hash; no shared state,
   no session affinity tables.  Adding a worker remaps ``1/W`` of the
   devices: drain the remapped devices (finish their in-flight batch),
   replay their resident task lists to the new owner (``GET
   /v1/devices/<name>`` is the full transferable state), flip routing.
3. Grouped kernel sweeps batch *across* a worker's devices, so skew —
   one hot device — caps a worker's win at its own traffic.  The
   fix is the same as everywhere: hot devices get a dedicated worker
   (rendezvous weights), cold ones share.

Kept dependency-free (hashlib + the stdlib) so clients can vendor the
routing function verbatim.
"""

from __future__ import annotations

import hashlib


def rendezvous_shard(device: str, shards: int, salt: str = "") -> int:
    """The shard (``0 .. shards-1``) that owns ``device``.

    Highest-random-weight: score every shard with
    ``blake2b(salt:shard:device)`` and pick the max — deterministic
    across processes and platforms (no Python ``hash()`` randomization).
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if shards == 1:
        return 0
    best_shard = 0
    best_score = b""
    for shard in range(shards):
        key = f"{salt}:{shard}:{device}".encode()
        score = hashlib.blake2b(key, digest_size=8).digest()
        if score > best_score:
            best_score = score
            best_shard = shard
    return best_shard


class ShardRouter:
    """A fixed-size rendezvous router (convenience wrapper)."""

    def __init__(self, shards: int, salt: str = "") -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        self.salt = salt

    def shard_of(self, device: str) -> int:
        return rendezvous_shard(device, self.shards, self.salt)
