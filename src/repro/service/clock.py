"""The service layer's one sanctioned wall-clock touchpoint.

Everything under ``src/repro`` is input-deterministic by contract —
RL006 bans wall-clock reads so analysis results can never depend on
when they ran.  A *serving* layer, though, is defined by time: the
micro-batcher's coalescing window is latency-bounded and every request
carries an arrival timestamp for the latency percentiles the load
harness reports.  Those reads are confined to this module, which is the
single RL006-allowlisted entry in
:data:`repro.lint.config.WALL_CLOCK_ALLOWED_MODULES`; the rest of
:mod:`repro.service` calls :func:`now` and stays lint-clean.  Decisions
themselves never depend on clock values — time only shapes *when* a
batch flushes, not *what* it decides (the parity suite replays the same
streams through arbitrary batch partitions).
"""

from __future__ import annotations

import time


def now() -> float:
    """Monotonic seconds (arbitrary epoch) for timers and latencies."""
    return time.monotonic()
