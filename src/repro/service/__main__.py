"""``python -m repro.service`` — same entry point as ``repro-service``."""

from repro.service.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
