"""Scheduler interface used by the discrete-event simulator.

A scheduler contributes two ingredients (separated so the simulator can
own placement):

* :meth:`Scheduler.order` — the priority order of the active jobs
  (paper: non-decreasing deadline, ties by release time);
* :attr:`Scheduler.skip_blocked` — the fit discipline: ``False`` stops at
  the first job that does not fit (First-k-Fit's prefix rule), ``True``
  skips it and keeps trying later jobs (Next-Fit's greedy rule).
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence

from repro.core.interfaces import SchedulerKind
from repro.model.job import Job


class Scheduler(abc.ABC):
    """Priority order + fit discipline for the simulator."""

    #: Human-readable name for traces and reports.
    name: str = "scheduler"
    #: The paper's taxonomy slot, when the scheduler corresponds to one.
    kind: Optional[SchedulerKind] = None
    #: Greedy fit (EDF-NF) vs prefix fit (EDF-FkF).
    skip_blocked: bool = False

    @abc.abstractmethod
    def order(self, jobs: Sequence[Job]) -> List[Job]:
        """Return the active jobs in dispatch-priority order (highest first).

        Must be a permutation of ``jobs`` and deterministic (total order).
        """

    def select(self, jobs: Sequence[Job], capacity) -> List[Job]:
        """Pure capacity-check selection (the paper's free-migration model).

        The simulator uses this in FREE mode; placement-aware modes replace
        the area check with contiguous-hole placement but reuse
        :meth:`order` and :attr:`skip_blocked`.
        """
        running: List[Job] = []
        used = 0
        for job in self.order(jobs):
            if used + job.area <= capacity:
                running.append(job)
                used += job.area
            elif not self.skip_blocked:
                break
        return running

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
