"""The deadline-ordered ready queue ``Q`` (paper Definitions 1-2).

"Let Q be the queue of all active jobs sorted by non-decreasing deadlines
(sorted by release time in ties of deadlines)."  A final tie-break on task
name/index makes the order total, so simulations are deterministic.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.model.job import Job


def edf_order(jobs: Sequence[Job]) -> List[Job]:
    """Jobs sorted by (absolute deadline, release, task name, index)."""
    return sorted(jobs)
