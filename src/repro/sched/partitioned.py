"""Partitioned FPGA scheduling (Danne & Platzner RAW'06 — paper ref [10]).

The device is split into fixed-width partitions; each task is bound to
one partition and execution inside a partition is serialized, reducing
the problem to bin-packing plus per-partition *uniprocessor* EDF
analysis.  The paper contrasts this with the global scheduling it
analyzes; we provide it as the comparison baseline
(`examples/partitioned_vs_global.py`).

Packing heuristic: tasks in decreasing area order, first-fit into the
partition whose width already accommodates the task (capacity check via a
pluggable uniprocessor test); a new partition of exactly the task's width
is opened when none fits and width budget remains.  Decreasing-area
first-fit is the classic choice; optimal partitioning is NP-hard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.core.interfaces import PerTaskVerdict, SchedulerKind, TestResult
from repro.fpga.device import Fpga
from repro.model.task import Task, TaskSet
from repro.uni.qpa import qpa_test

#: A uniprocessor EDF test: TaskSet -> TestResult.
UniTest = Callable[[TaskSet], TestResult]


@dataclass
class Partition:
    """A fixed-width column slice running its tasks serially under EDF."""

    width: int
    tasks: List[Task] = field(default_factory=list)

    @property
    def time_utilization(self):
        return sum(t.time_utilization for t in self.tasks)

    def fits(self, task: Task) -> bool:
        return task.area <= self.width

    def as_taskset(self) -> TaskSet:
        return TaskSet(self.tasks)


@dataclass(frozen=True)
class PartitionedResult:
    """Outcome of partitioned allocation + per-partition analysis."""

    accepted: bool
    partitions: Tuple[Partition, ...]
    unplaced: Tuple[Task, ...]
    result: TestResult


def partition_first_fit(
    taskset: TaskSet,
    fpga: Fpga,
    uni_test: UniTest = qpa_test,
) -> PartitionedResult:
    """Decreasing-area first-fit partitioning with pluggable EDF test.

    A task goes into the first existing partition that is wide enough AND
    whose taskset (with this task added) still passes ``uni_test``.  If
    none works and enough width budget remains, a new partition of the
    task's width opens.  Tasks that cannot be placed are reported in
    ``unplaced`` and the overall verdict is rejection.
    """
    partitions: List[Partition] = []
    unplaced: List[Task] = []
    budget = fpga.capacity
    for task in sorted(taskset, key=lambda t: (-t.area, t.name)):
        placed = False
        for part in partitions:
            if not part.fits(task):
                continue
            candidate = TaskSet(part.tasks + [task])
            if uni_test(candidate).accepted:
                part.tasks.append(task)
                placed = True
                break
        if not placed:
            if task.area <= budget and uni_test(TaskSet([task])).accepted:
                partitions.append(Partition(width=int(task.area), tasks=[task]))
                budget -= int(task.area)
                placed = True
        if not placed:
            unplaced.append(task)

    verdicts = []
    for idx, part in enumerate(partitions):
        res = uni_test(part.as_taskset())
        verdicts.append(
            PerTaskVerdict(
                task=f"partition{idx}[w={part.width}]",
                passed=res.accepted,
                lhs=part.time_utilization,
                rhs=1,
                detail=f"tasks: {', '.join(t.name for t in part.tasks)}",
            )
        )
    for task in unplaced:
        verdicts.append(PerTaskVerdict(task.name, False, detail="unplaced"))
    accepted = not unplaced and all(v.passed for v in verdicts)
    result = TestResult(
        test_name="partitioned-FFD",
        accepted=accepted,
        schedulers=frozenset(SchedulerKind),
        per_task=tuple(verdicts),
        reason="" if accepted else "packing or per-partition analysis failed",
    )
    return PartitionedResult(accepted, tuple(partitions), tuple(unplaced), result)


def partitioned_test(
    taskset: TaskSet, fpga: Fpga, uni_test: UniTest = qpa_test
) -> TestResult:
    """Schedulability-test adapter for :func:`partition_first_fit`."""
    return partition_first_fit(taskset, fpga, uni_test).result


partitioned_test.name = "partitioned-FFD"  # type: ignore[attr-defined]
partitioned_test.schedulers = frozenset(SchedulerKind)  # type: ignore[attr-defined]
