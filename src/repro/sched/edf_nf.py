"""EDF-Next-Fit (paper Definition 2).

"Start with an empty set R and visit all active jobs Ji in Q in order of
non-decreasing deadlines.  Add Ji to R iff Σ_{Jk∈R∪Ji} Ak <= A(H)."

Unlike EDF-FkF, a wide job that does not fit is *skipped* and the narrower
jobs behind it may run — EDF-NF exploits idle area that FkF would waste,
which is why it dominates FkF (any FkF-schedulable set is NF-schedulable,
paper §1) and why Lemma 2 can use the waiting job's own ``A_k``.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.interfaces import SchedulerKind
from repro.model.job import Job
from repro.sched.base import Scheduler
from repro.sched.edf_queue import edf_order


class EdfNf(Scheduler):
    """Global EDF with greedy (next-fit) fitting."""

    name = "EDF-NF"
    kind = SchedulerKind.EDF_NF
    skip_blocked = True

    def order(self, jobs: Sequence[Job]) -> List[Job]:
        return edf_order(jobs)
