"""EDF-First-k-Fit (paper Definition 1).

"The scheduling algorithm EDF-FkF selects at any time the first k jobs R
of Q for execution, with the largest k for which Σ_{Ji∈R} Ai <= A(H)."

Since areas are positive the cumulative sum is strictly increasing, so the
largest such prefix ends right before the first job that does not fit —
a wide job at the queue head can therefore *block* narrower jobs behind
it, which is exactly why EDF-NF dominates EDF-FkF (paper §1) and why
Lemma 1 must use ``Amax``.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.interfaces import SchedulerKind
from repro.model.job import Job
from repro.sched.base import Scheduler
from repro.sched.edf_queue import edf_order


class EdfFkf(Scheduler):
    """Global EDF with prefix (first-k) fitting."""

    name = "EDF-FkF"
    kind = SchedulerKind.EDF_FKF
    skip_blocked = False

    def order(self, jobs: Sequence[Job]) -> List[Job]:
        return edf_order(jobs)
