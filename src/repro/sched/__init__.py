"""Hardware-task schedulers.

* :class:`EdfFkf` — EDF-First-k-Fit (paper Definition 1): run the largest
  *prefix* of the deadline-ordered queue that fits.
* :class:`EdfNf` — EDF-Next-Fit (paper Definition 2): walk the queue and
  greedily run anything that still fits (skipping blocked wide jobs).
* :class:`EdfUs` — EDF-US[x] hybrid (paper §7 future work): heavy tasks
  get top priority, the rest are EDF-ordered.
* :mod:`repro.sched.partitioned` — partitioned scheduling (Danne &
  Platzner RAW'06, the paper's reference [10]).
"""

from repro.sched.base import Scheduler
from repro.sched.edf_queue import edf_order
from repro.sched.edf_fkf import EdfFkf
from repro.sched.edf_nf import EdfNf
from repro.sched.edf_us import EdfUs
from repro.sched.partitioned import (
    Partition,
    PartitionedResult,
    partition_first_fit,
    partitioned_test,
)

__all__ = [
    "Scheduler",
    "edf_order",
    "EdfFkf",
    "EdfNf",
    "EdfUs",
    "Partition",
    "PartitionedResult",
    "partition_first_fit",
    "partitioned_test",
]
