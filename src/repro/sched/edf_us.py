"""EDF-US[x] hybrid priority scheme (paper §7 future work).

Srinivasan & Baruah's EDF-US[m/(2m-1)] gives tasks with utilization above
a threshold *top* priority and schedules the rest in EDF order — it fixes
global EDF's vulnerability to a few heavy tasks.  The paper suggests
porting it to FPGAs and notes the notion of "heavy" may need to refer to
*system* utilization (``C·A/T``, normalized by the device area) rather
than time utilization; both interpretations are provided.
"""

from __future__ import annotations

from numbers import Real
from typing import List, Literal, Sequence

from repro.model.job import Job
from repro.sched.base import Scheduler


def edf_us_threshold(m: int) -> Real:
    """The classic multiprocessor threshold ``m / (2m - 1)``."""
    if m < 1:
        raise ValueError("m must be >= 1")
    from fractions import Fraction

    return Fraction(m, 2 * m - 1)


class EdfUs(Scheduler):
    """EDF-US hybrid: heavy tasks first, then EDF; greedy or prefix fit.

    Parameters
    ----------
    threshold:
        Utilization cutoff above which a task counts as heavy.
    heaviness:
        ``"time"`` compares ``C/T`` against the threshold; ``"system"``
        compares ``(C·A/T)/A(H)`` (the paper's suggested FPGA adaptation)
        and then needs ``device_area``.
    device_area:
        Total device columns; required for ``heaviness="system"``.
    fit:
        ``"nf"`` (greedy, default) or ``"fkf"`` (prefix) — the same two
        fitting disciplines as plain EDF.
    """

    kind = None  # hybrid: not one of the paper's two taxonomy slots

    def __init__(
        self,
        threshold: Real,
        heaviness: Literal["time", "system"] = "time",
        device_area: int | None = None,
        fit: Literal["nf", "fkf"] = "nf",
    ):
        if not 0 < threshold <= 1:
            raise ValueError("threshold must be in (0, 1]")
        if heaviness not in ("time", "system"):
            raise ValueError(f"unknown heaviness {heaviness!r}")
        if heaviness == "system" and device_area is None:
            raise ValueError("heaviness='system' requires device_area")
        if fit not in ("nf", "fkf"):
            raise ValueError(f"unknown fit {fit!r}")
        self.threshold = threshold
        self.heaviness = heaviness
        self.device_area = device_area
        self.skip_blocked = fit == "nf"
        self.name = f"EDF-US[{threshold}]-{fit}"

    def is_heavy(self, job: Job) -> bool:
        """Whether the job's task exceeds the heaviness threshold."""
        task = job.task
        if self.heaviness == "time":
            return task.time_utilization > self.threshold
        from repro.util.mathutil import exact_div

        return exact_div(task.system_utilization, self.device_area) > self.threshold

    def order(self, jobs: Sequence[Job]) -> List[Job]:
        """Heavy jobs first (deadline-tie-broken), then EDF order."""
        return sorted(jobs, key=lambda j: (not self.is_heavy(j),) + j.sort_key)
