"""Execution traces and the α-work-conserving invariant checkers.

A :class:`Trace` is a sequence of maximal segments between scheduler
decision points.  Each segment records who ran, how much area was busy
and which jobs were waiting — enough to *check* the paper's §3 occupancy
lemmas against actual executions:

* Lemma 1 (EDF-FkF): whenever the ready queue is non-empty, occupied
  area >= ``A(H) - Amax + 1``;
* Lemma 2 (EDF-NF): while a job of area ``A_k`` waits, occupied
  area >= ``A(H) - A_k + 1``.

The test-suite runs randomized simulations and asserts zero violations —
an executable proof sketch of the lemmas (and a strong simulator sanity
check).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from numbers import Real
from typing import List, Tuple


@dataclass(frozen=True)
class TraceSegment:
    """One constant-schedule interval ``[start, end)``."""

    start: Real
    end: Real
    #: (job id, area) of each running job.
    running: Tuple[Tuple[str, int], ...]
    #: (job id, area) of each active-but-not-running job.
    waiting: Tuple[Tuple[str, int], ...]

    @property
    def occupied(self) -> int:
        return sum(a for _, a in self.running)

    @property
    def length(self) -> Real:
        return self.end - self.start

    @property
    def queue_nonempty(self) -> bool:
        return bool(self.waiting)


@dataclass(frozen=True)
class AlphaViolation:
    """A segment that contradicts one of the §3 occupancy lemmas."""

    segment: TraceSegment
    required: int
    observed: int
    lemma: str


@dataclass
class Trace:
    """Recorded execution of one simulation run."""

    capacity: int
    segments: List[TraceSegment] = field(default_factory=list)

    def append(self, segment: TraceSegment) -> None:
        if segment.end < segment.start:
            raise ValueError(f"segment ends before it starts: {segment}")
        self.segments.append(segment)

    # -- aggregate measures --------------------------------------------------

    @property
    def span(self) -> Real:
        if not self.segments:
            return 0
        return self.segments[-1].end - self.segments[0].start

    def busy_area_time(self) -> Real:
        """``∫ occupied(t) dt`` over the trace."""
        return sum(s.occupied * s.length for s in self.segments)

    def average_occupancy(self) -> float:
        """Mean fraction of the device kept busy."""
        span = self.span
        if span == 0:
            return 0.0
        return float(self.busy_area_time()) / (float(span) * self.capacity)

    # -- Lemma checkers ----------------------------------------------------------

    def check_fkf_alpha(self, amax: int) -> List[AlphaViolation]:
        """Lemma 1: occupied >= capacity - Amax + 1 while anyone waits."""
        required = self.capacity - amax + 1
        return [
            AlphaViolation(s, required, s.occupied, "Lemma1/EDF-FkF")
            for s in self.segments
            if s.queue_nonempty and s.length > 0 and s.occupied < required
        ]

    def check_nf_alpha(self) -> List[AlphaViolation]:
        """Lemma 2: occupied >= capacity - A_k + 1 while a job of area A_k
        waits (checked per waiting job, the strongest form)."""
        violations = []
        for s in self.segments:
            if s.length <= 0:
                continue
            for _, area in s.waiting:
                required = self.capacity - area + 1
                if s.occupied < required:
                    violations.append(
                        AlphaViolation(s, required, s.occupied, "Lemma2/EDF-NF")
                    )
        return violations
