"""Exact decision of the synchronous periodic case via hyperperiod cycling.

For synchronous periodic tasksets with *rational* parameters the schedule
is eventually periodic: the scheduler is deterministic and memoryless in
the system state (multiset of residual jobs), and releases repeat with
the hyperperiod ``H = lcm(T_i)``.  So if the state observed at some
multiple of ``H`` ever *repeats*, the schedule has entered a cycle and
will never miss a deadline; if a deadline is missed first, the taskset is
unschedulable for the synchronous pattern.  One of the two must happen
within finitely many hyperperiods when total backlog is bounded.

This upgrades the paper's "coarse upper bound" simulation to an *exact*
verdict for the synchronous release pattern (still only an upper bound on
sporadic schedulability — see :mod:`repro.sim.offsets` for that side).
"""

from __future__ import annotations

import enum
from fractions import Fraction
from typing import Optional, Tuple

from repro.fpga.device import Fpga
from repro.model.task import TaskSet
from repro.sched.base import Scheduler
from repro.sim.simulator import simulate
from repro.util.mathutil import hyperperiod


class SynchronousVerdict(enum.Enum):
    """Outcome of the hyperperiod-cycling decision."""

    SCHEDULABLE = "schedulable"
    UNSCHEDULABLE = "unschedulable"
    #: Backlog kept growing past the analysis budget without repeating —
    #: with demand above capacity this is effectively unschedulable, but
    #: no deadline fell inside the simulated window.
    UNDECIDED = "undecided"


def decide_synchronous(
    taskset: TaskSet,
    fpga: Fpga,
    scheduler: Scheduler,
    max_hyperperiods: int = 16,
) -> Tuple[SynchronousVerdict, Optional[Fraction]]:
    """Decide the synchronous pattern exactly; returns (verdict, miss time).

    Parameters must be rational (``int`` or ``Fraction``) so the
    hyperperiod exists; floats are rejected by the lcm helper.  The
    simulation runs in exact arithmetic, so state comparison is exact.
    """
    if max_hyperperiods < 1:
        raise ValueError("max_hyperperiods must be >= 1")
    h = hyperperiod([t.period for t in taskset])
    for k in range(1, max_hyperperiods + 1):
        horizon = h * k
        result = simulate(
            taskset,
            fpga,
            scheduler,
            horizon,
            eps=0,
            stop_at_first_miss=True,
            max_events=5_000_000,
        )
        if not result.schedulable:
            return SynchronousVerdict.UNSCHEDULABLE, Fraction(result.misses[0].deadline)
        # State at k*H: jobs released but not yet completed.  If the
        # boundary state is EMPTY, the situation at k*H is identical to
        # t=0 (synchronous releases recur at every multiple of H), so the
        # miss-free prefix repeats forever: schedulable.  Otherwise extend
        # the window — with residual backlog the prefix is inconclusive.
        backlog = result.metrics.jobs_released - result.metrics.jobs_completed
        if backlog == 0:
            return SynchronousVerdict.SCHEDULABLE, None
    return SynchronousVerdict.UNDECIDED, None
