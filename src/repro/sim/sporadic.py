"""Sporadic release patterns: jittered inter-arrival simulation.

The paper's task model is *sporadic* — ``T`` is a minimum inter-arrival
time, not a fixed period — but its simulation (and ours, by default)
releases strictly periodically.  The schedulability bounds claim
soundness over ALL legal sporadic patterns, so randomized inter-arrival
jitter gives both:

* a stronger executable soundness check (accepted tasksets must survive
  every sampled pattern — property-tested);
* a further refinement of the §6 simulation upper bound, alongside
  :mod:`repro.sim.offsets` (any failing pattern proves unschedulability).

Like the offset module, two searches share the soundness argument:
:func:`simulate_sporadic` samples per-gap jitter uniformly, and
:func:`adaptive_sporadic_search` importance-samples constant-per-task
gap factors with the cross-entropy machinery of :mod:`repro.search`
(scalar twin of :func:`repro.search.adaptive_sporadic_search_batch` —
same generator, same patterns, bit-identical verdicts/slacks).  Both
record a best-effort ``min_slack`` over every simulated pattern on the
returned result.
"""

from __future__ import annotations

from numbers import Real
from typing import Dict, List, Optional

import numpy as np

from repro.fpga.device import Fpga
from repro.model.task import TaskSet
from repro.sched.base import Scheduler
from repro.search.adaptive import adaptive_pattern_search
from repro.search.patterns import release_times_from_unit
from repro.search.proposal import SearchConfig
from repro.sim.simulator import SimulationResult, simulate


def sample_release_schedule(
    taskset: TaskSet,
    horizon: Real,
    rng: np.random.Generator,
    max_jitter_factor: float = 0.5,
) -> Dict[str, List[float]]:
    """One legal sporadic release schedule over ``[0, horizon)``.

    Each task's first release is 0 (the demanding case) and every
    subsequent gap is ``T_i * (1 + U(0, max_jitter_factor))`` — always at
    least the minimum inter-arrival, as the sporadic model requires.
    """
    if max_jitter_factor < 0:
        raise ValueError("max_jitter_factor must be >= 0")
    schedule: Dict[str, List[float]] = {}
    for t in taskset:
        releases = [0.0]
        while True:
            gap = float(t.period) * (1.0 + float(rng.uniform(0.0, max_jitter_factor)))
            nxt = releases[-1] + gap
            if nxt >= horizon:
                break
            releases.append(nxt)
        schedule[t.name] = releases
    return schedule


def simulate_release_schedule(
    taskset: TaskSet,
    fpga: Fpga,
    scheduler: Scheduler,
    horizon: Real,
    schedule: Dict[str, List[float]],
    **simulate_kwargs,
) -> SimulationResult:
    """Simulate an explicit release schedule.

    Implemented by splitting each task into one single-shot pseudo-task
    per release (period stretched past the horizon), which reuses the
    event-driven simulator unchanged — correctness over cleverness.
    """
    from repro.model.task import Task, TaskSet as TS

    unknown = set(schedule) - {t.name for t in taskset}
    if unknown:
        raise ValueError(f"schedule for unknown tasks: {sorted(unknown)}")
    pseudo = []
    offsets: Dict[str, float] = {}
    far = float(horizon) * 2 + 1
    for t in taskset:
        for j, release in enumerate(schedule.get(t.name, [])):
            if not 0 <= release < horizon:
                raise ValueError(f"release {release} outside [0, {horizon})")
            name = f"{t.name}@{j}"
            pseudo.append(
                Task(
                    wcet=t.wcet,
                    period=far,  # single job within the horizon
                    deadline=t.deadline,
                    area=t.area,
                    name=name,
                )
            )
            offsets[name] = float(release)
    if not pseudo:
        raise ValueError("empty release schedule")
    return simulate(
        TS(pseudo), fpga, scheduler, horizon, offsets=offsets, **simulate_kwargs
    )


def simulate_sporadic(
    taskset: TaskSet,
    fpga: Fpga,
    scheduler: Scheduler,
    horizon: Real,
    rng: np.random.Generator,
    samples: int = 10,
    max_jitter_factor: float = 0.5,
    include_periodic: bool = True,
    **simulate_kwargs,
) -> SimulationResult:
    """Simulate several sporadic patterns; return the first failure or the
    last success (mirrors :func:`repro.sim.offsets.simulate_with_offsets`,
    including the best-effort ``min_slack`` over every simulated pattern
    and the trivially-schedulable empty-taskset guard)."""
    if samples < 0:
        raise ValueError("samples must be >= 0")
    if len(taskset) == 0:
        # No tasks, no releases: one empty run certifies every pattern
        # (simulate_release_schedule would reject the empty schedule).
        return simulate(taskset, fpga, scheduler, horizon, **simulate_kwargs)
    best_slack: Real = float("inf")
    result: Optional[SimulationResult] = None
    if include_periodic:
        result = simulate(taskset, fpga, scheduler, horizon, **simulate_kwargs)
        best_slack = result.min_slack
        if not result.schedulable:
            return result
    for _ in range(samples):
        schedule = sample_release_schedule(taskset, horizon, rng, max_jitter_factor)
        result = simulate_release_schedule(
            taskset, fpga, scheduler, horizon, schedule, **simulate_kwargs
        )
        if result.min_slack < best_slack:
            best_slack = result.min_slack
        if not result.schedulable:
            break
    if result is None:
        raise ValueError("nothing to simulate: no patterns requested")
    result.min_slack = best_slack
    return result


def adaptive_sporadic_search(
    taskset: TaskSet,
    fpga: Fpga,
    scheduler: Scheduler,
    horizon: Real,
    rng: np.random.Generator,
    budget: int = 20,
    max_jitter_factor: float = 0.5,
    config: SearchConfig = SearchConfig(),
    include_periodic: bool = True,
    **simulate_kwargs,
) -> SimulationResult:
    """Importance-sampled sporadic search (scalar twin of the batched
    :func:`repro.search.adaptive_sporadic_search_batch`).

    Spends ``budget`` constant-per-task gap patterns
    (``g_i = T_i * (1 + u_i * max_jitter_factor) >= T_i`` — always a
    legal sporadic schedule) steered by the cross-entropy loop of
    :mod:`repro.search`; ``include_periodic`` checks the strictly
    periodic pattern first, outside the budget.  Returns the first
    failing run or the last passing one with the search-wide best-effort
    ``min_slack``; with the same ``rng`` as row ``b`` of the batched
    driver, patterns/verdicts/slacks are bit-identical.
    """
    if budget < 0:
        raise ValueError("budget must be >= 0")
    if max_jitter_factor < 0:
        raise ValueError("max_jitter_factor must be >= 0")
    if len(taskset) == 0:
        return simulate(taskset, fpga, scheduler, horizon, **simulate_kwargs)
    best_slack: Real = float("inf")
    result: Optional[SimulationResult] = None
    if include_periodic:
        result = simulate(taskset, fpga, scheduler, horizon, **simulate_kwargs)
        best_slack = result.min_slack
        if not result.schedulable:
            return result
    if budget == 0 and result is None:
        raise ValueError("nothing to simulate: no patterns requested")

    names = [t.name for t in taskset]
    periods = np.array([float(t.period) for t in taskset], dtype=np.float64)
    hz = np.array([float(horizon)], dtype=np.float64)

    def score(live: np.ndarray, u: np.ndarray):
        nonlocal best_slack, result
        _, patterns, n = u.shape
        times = release_times_from_unit(
            np.broadcast_to(periods, (patterns, n)),
            u[0],
            np.broadcast_to(hz, (patterns,)),
            max_jitter_factor,
        )
        slack = np.empty((1, patterns), dtype=np.float64)
        ok = np.empty((1, patterns), dtype=bool)
        for p in range(patterns):
            schedule = {
                name: [float(r) for r in times[p, j] if np.isfinite(r)]
                for j, name in enumerate(names)
            }
            res = simulate_release_schedule(
                taskset, fpga, scheduler, horizon, schedule, **simulate_kwargs
            )
            slack[0, p] = res.min_slack
            ok[0, p] = res.schedulable
            if result is None or result.schedulable:
                result = res
            if res.min_slack < best_slack:
                best_slack = res.min_slack
        return slack, ok

    adaptive_pattern_search(1, len(taskset), score, [rng], budget, config)
    assert result is not None
    result.min_slack = best_slack
    return result
