"""Aggregate statistics collected by a simulation run."""

from __future__ import annotations

from dataclasses import dataclass, field
from numbers import Real
from typing import Dict


@dataclass
class SimMetrics:
    """Counters and integrals produced by :func:`repro.sim.simulator.simulate`."""

    jobs_released: int = 0
    jobs_completed: int = 0
    deadline_misses: int = 0
    #: A running job displaced by the scheduler before completing.
    preemptions: int = 0
    #: A job resumed at a different position (placement modes only).
    migrations: int = 0
    #: Scheduler decision points processed.
    decision_points: int = 0
    #: ``∫ occupied(t) dt`` — area-time actually used.
    busy_area_time: Real = 0
    #: Time actually simulated (may stop early on a miss).
    simulated_time: Real = 0
    #: Worst observed response time per task name.
    worst_response: Dict[str, Real] = field(default_factory=dict)

    def record_response(self, task_name: str, response: Real) -> None:
        prev = self.worst_response.get(task_name)
        if prev is None or response > prev:
            self.worst_response[task_name] = response

    def average_occupancy(self, capacity: int) -> float:
        """Mean busy fraction of the device over the simulated span."""
        if self.simulated_time == 0:
            return 0.0
        return float(self.busy_area_time) / (float(self.simulated_time) * capacity)
