"""Event-driven simulation of hardware-task scheduling on a 1D FPGA.

The simulator reproduces the paper's §6 simulation methodology (all tasks
released synchronously, acceptance = no deadline miss within a horizon)
and extends it with the §7 future-work knobs:

* **Migration modes** — :class:`MigrationMode`:

  - ``FREE``: the paper's assumption — zero-cost unrestricted migration,
    a job fits iff total free area suffices (implicit defragmentation);
  - ``RELOCATABLE``: a job needs a *contiguous* hole at every dispatch and
    may move between preemptions (fragmentation bites, migrations counted);
  - ``PINNED``: a job is fixed to its first placement and can only resume
    when those exact columns are free (no migration at all).

* **Reconfiguration overhead** — every not-running -> running transition
  pays :meth:`~repro.fpga.reconfig.ReconfigurationModel.load_time` before
  useful work proceeds (conservative full-reload model).

Scheduling decisions happen at job releases, completions and deadline
expiries; between events the running set is constant, so simulating event
to event is exact (no time quantization).  All arithmetic is plain Python,
so exact ``Fraction`` time works end-to-end for the property tests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from numbers import Real
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.fpga.device import Fpga
from repro.fpga.freelist import FreeList
from repro.fpga.placement import PlacementPolicy
from repro.fpga.reconfig import ZERO_RECONFIG, ReconfigurationModel
from repro.model.job import Job
from repro.model.task import TaskSet
from repro.sched.base import Scheduler
from repro.sim.metrics import SimMetrics
from repro.sim.trace import Trace, TraceSegment
from repro.util.mathutil import TIME_EPS


class MigrationMode(enum.Enum):
    """How freely jobs may (re)place themselves on the fabric."""

    FREE = "free"
    RELOCATABLE = "relocatable"
    PINNED = "pinned"


class SimulationError(RuntimeError):
    """Raised when the event loop exceeds its safety bound."""


@dataclass(frozen=True)
class DeadlineMiss:
    """A job that was incomplete at its absolute deadline."""

    task: str
    job_index: int
    deadline: Real
    remaining: Real


@dataclass(frozen=True)
class SimulationConfig:
    """Bundled keyword arguments of :func:`simulate` (for sweeps)."""

    horizon: Real
    mode: MigrationMode = MigrationMode.FREE
    placement_policy: PlacementPolicy = PlacementPolicy.FIRST_FIT
    reconfig: ReconfigurationModel = ZERO_RECONFIG
    stop_at_first_miss: bool = True
    record_trace: bool = False
    max_events: int = 1_000_000


@dataclass
class SimulationResult:
    """Outcome of one simulation run.

    ``min_slack`` is the run's near-miss metric: the minimum over every
    decided job of ``deadline - completion_time`` (completions) and
    ``-remaining`` (misses) — ``+inf`` when no job was decided, negative
    iff a deadline was missed.  The release-pattern searches
    (:mod:`repro.sim.offsets`, :mod:`repro.sim.sporadic`,
    :mod:`repro.search`) use it to rank how close a surviving pattern
    came to a miss; on float inputs it matches the batched simulator's
    :attr:`repro.vector.sim_vec.SimBatchResult.min_slack` bit-exactly.
    """

    schedulable: bool
    misses: List[DeadlineMiss]
    metrics: SimMetrics
    trace: Optional[Trace] = None
    min_slack: Real = float("inf")

    def __bool__(self) -> bool:
        return self.schedulable


def default_horizon(
    taskset: TaskSet,
    factor: int = 20,
    offsets: Optional[Mapping[str, Real]] = None,
) -> Real:
    """The default simulation horizon: ``max D + factor * max T [+ max O]``.

    Real-valued periods have no hyperperiod (DESIGN.md §4.9), so the
    paper-style simulation runs a fixed multiple of the longest period.

    When release ``offsets`` are given, the window is extended by the
    largest one: a task first released at ``O_i`` only sees
    ``floor((H - O_i) / T_i)`` jobs before ``H``, so an unextended
    window would simulate *fewer* jobs per task than the synchronous run
    and silently weaken the upper bound an offset search claims to
    refine (see :mod:`repro.sim.offsets`).
    """
    if factor < 1:
        raise ValueError("factor must be >= 1")
    base = taskset.max_deadline + factor * taskset.max_period
    if not offsets:
        return base
    if any(o < 0 for o in offsets.values()):
        raise ValueError("offsets must be >= 0")
    return base + max(offsets.values())


def _job_id(job: Job) -> str:
    return f"{job.task.name}#{job.index}"


def simulate(
    taskset: TaskSet,
    fpga: Fpga,
    scheduler: Scheduler,
    horizon: Real,
    *,
    offsets: Optional[Mapping[str, Real]] = None,
    mode: MigrationMode = MigrationMode.FREE,
    placement_policy: PlacementPolicy = PlacementPolicy.FIRST_FIT,
    reconfig: ReconfigurationModel = ZERO_RECONFIG,
    stop_at_first_miss: bool = True,
    record_trace: bool = False,
    max_events: int = 1_000_000,
    eps: float = TIME_EPS,
) -> SimulationResult:
    """Simulate ``taskset`` on ``fpga`` under ``scheduler`` over ``[0, horizon)``.

    Tasks release periodically starting at their offset (default 0 — the
    paper's synchronous pattern).  Returns a :class:`SimulationResult`;
    ``schedulable`` means no deadline miss occurred before the horizon (a
    *necessary* condition for true schedulability, per §6).
    """
    if horizon <= 0:
        raise ValueError("horizon must be > 0")
    capacity = fpga.capacity
    use_placement = mode is not MigrationMode.FREE
    if use_placement and not taskset.all_integral_area:
        raise ValueError("placement-aware modes require integral task areas")

    offsets = dict(offsets or {})
    unknown = set(offsets) - {t.name for t in taskset}
    if unknown:
        raise ValueError(f"offsets for unknown tasks: {sorted(unknown)}")

    next_release: Dict[str, Real] = {
        t.name: offsets.get(t.name, 0) for t in taskset
    }
    job_counter: Dict[str, int] = {t.name: 0 for t in taskset}
    tasks_by_name = {t.name: t for t in taskset}

    active: List[Job] = []
    missed: Set[str] = set()
    prev_running_ids: Set[str] = set()
    positions: Dict[str, int] = {}
    pinned: Dict[str, int] = {}
    setup: Dict[str, Real] = {}

    metrics = SimMetrics()
    trace = Trace(capacity) if record_trace else None
    misses: List[DeadlineMiss] = []
    min_slack: Real = float("inf")

    def release_due(now: Real) -> None:
        for name, task in tasks_by_name.items():
            while next_release[name] <= now + eps and next_release[name] < horizon:
                job = Job(task=task, release=next_release[name], index=job_counter[name])
                active.append(job)
                job_counter[name] += 1
                metrics.jobs_released += 1
                next_release[name] = next_release[name] + task.period

    def select_running(now: Real) -> List[Job]:
        metrics.decision_points += 1
        if not use_placement:
            return scheduler.select(active, capacity)
        freelist = FreeList(fpga)
        running: List[Job] = []
        for job in scheduler.order(active):
            jid = _job_id(job)
            width = int(job.area)
            placed_at: Optional[int] = None
            if mode is MigrationMode.PINNED and jid in pinned:
                if freelist.is_free(pinned[jid], width):
                    freelist.allocate_at(jid, pinned[jid], width)
                    placed_at = pinned[jid]
            else:
                prev = positions.get(jid)
                if prev is not None and freelist.is_free(prev, width):
                    freelist.allocate_at(jid, prev, width)
                    placed_at = prev
                else:
                    alloc = freelist.allocate(jid, width, placement_policy)
                    if alloc is not None:
                        placed_at = alloc.start
                        if prev is not None and prev != alloc.start:
                            metrics.migrations += 1
            if placed_at is not None:
                running.append(job)
                positions[jid] = placed_at
                job.position = placed_at
                if mode is MigrationMode.PINNED:
                    pinned.setdefault(jid, placed_at)
            elif not scheduler.skip_blocked:
                break
        return running

    now: Real = 0
    release_due(now)
    events = 0
    charge_reconfig = not reconfig.is_zero

    while True:
        events += 1
        if events > max_events:
            raise SimulationError(
                f"exceeded {max_events} events at t={now}; "
                "suspiciously dense schedule or a bug"
            )

        running = select_running(now)
        running_ids = {_job_id(j) for j in running}

        # Preemption accounting + reconfiguration charging.
        for jid in prev_running_ids - running_ids:
            metrics.preemptions += 1
        if charge_reconfig:
            for job in running:
                jid = _job_id(job)
                if jid not in prev_running_ids:
                    setup[jid] = reconfig.load_time(job.area)

        # Next event time: release, completion, or deadline expiry.
        t_next: Real = horizon
        pending = [r for r in next_release.values() if r < horizon]
        if pending:
            nr = min(pending)
            if nr < t_next:
                t_next = nr
        for job in running:
            completion = now + setup.get(_job_id(job), 0) + job.remaining
            if completion < t_next:
                t_next = completion
        for job in active:
            jid = _job_id(job)
            if jid in missed:
                continue
            d = job.absolute_deadline
            if now + eps < d < t_next:
                t_next = d

        dt = t_next - now
        if dt > 0:
            for job in running:
                jid = _job_id(job)
                work = dt
                if charge_reconfig and setup.get(jid, 0) > 0:
                    s = setup[jid]
                    if work <= s:
                        setup[jid] = s - work
                        work = 0
                    else:
                        setup[jid] = 0
                        work = work - s
                if work > 0:
                    job.remaining = job.remaining - work
            occupied = sum(int(j.area) for j in running)
            metrics.busy_area_time = metrics.busy_area_time + occupied * dt
            if trace is not None:
                waiting = tuple(
                    (_job_id(j), int(j.area)) for j in active if _job_id(j) not in running_ids
                )
                trace.append(
                    TraceSegment(
                        start=now,
                        end=t_next,
                        running=tuple((_job_id(j), int(j.area)) for j in running),
                        waiting=waiting,
                    )
                )
        now = t_next

        # Completions (before miss checks: finishing exactly at the
        # deadline is a success).
        done: List[Job] = [
            j
            for j in running
            if j.remaining <= eps and setup.get(_job_id(j), 0) <= eps
        ]
        for job in done:
            jid = _job_id(job)
            slack = job.absolute_deadline - now
            if slack < min_slack:
                min_slack = slack
            active.remove(job)
            running_ids.discard(jid)
            metrics.jobs_completed += 1
            metrics.record_response(job.task.name, now - job.release)
            positions.pop(jid, None)
            pinned.pop(jid, None)
            setup.pop(jid, None)

        # Deadline misses.
        for job in active:
            jid = _job_id(job)
            if jid in missed:
                continue
            if job.absolute_deadline <= now + eps and job.remaining > eps:
                missed.add(jid)
                slack = -job.remaining
                if slack < min_slack:
                    min_slack = slack
                metrics.deadline_misses += 1
                misses.append(
                    DeadlineMiss(
                        task=job.task.name,
                        job_index=job.index,
                        deadline=job.absolute_deadline,
                        remaining=job.remaining,
                    )
                )
        if misses and stop_at_first_miss:
            break
        if now >= horizon - eps:
            break
        release_due(now)
        prev_running_ids = running_ids & {_job_id(j) for j in active}

    metrics.simulated_time = now
    return SimulationResult(
        schedulable=not misses,
        misses=misses,
        metrics=metrics,
        trace=trace,
        min_slack=min_slack,
    )


def simulate_config(
    taskset: TaskSet, fpga: Fpga, scheduler: Scheduler, config: SimulationConfig
) -> SimulationResult:
    """Run :func:`simulate` from a :class:`SimulationConfig` bundle."""
    return simulate(
        taskset,
        fpga,
        scheduler,
        config.horizon,
        mode=config.mode,
        placement_policy=config.placement_policy,
        reconfig=config.reconfig,
        stop_at_first_miss=config.stop_at_first_miss,
        record_trace=config.record_trace,
        max_events=config.max_events,
    )
