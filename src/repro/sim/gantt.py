"""ASCII rendering of simulation traces (column-occupancy Gantt charts).

Turns a recorded :class:`~repro.sim.trace.Trace` into the kind of picture
the paper draws by hand in Fig. 1: time on the x-axis, device columns on
the y-axis, one letter per job.  Only meaningful for placement-aware
simulation modes (jobs carry positions there); the FREE mode renders an
area-stacked approximation instead (jobs stacked in selection order, which
is exactly the defragmented view the paper's model assumes).
"""

from __future__ import annotations

from typing import Dict, List

from repro.sim.trace import Trace

#: Glyphs assigned to jobs in order of first appearance.
_GLYPHS = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"


def render_gantt(
    trace: Trace,
    time_step: float = 1.0,
    max_width: int = 100,
) -> str:
    """Render the trace as rows of columns over quantized time.

    Each output row is one device column (row 0 = column 0 at the top);
    each character cell covers ``time_step`` time units and shows the job
    occupying that column for (the majority of) that slot, ``.`` if idle.
    """
    if time_step <= 0:
        raise ValueError("time_step must be > 0")
    if not trace.segments:
        return "(empty trace)"
    t0 = float(trace.segments[0].start)
    t1 = float(trace.segments[-1].end)
    slots = min(int((t1 - t0) / time_step + 0.5), max_width)
    if slots <= 0:
        slots = 1

    glyph_of: Dict[str, str] = {}

    def glyph(job_id: str) -> str:
        if job_id not in glyph_of:
            glyph_of[job_id] = _GLYPHS[len(glyph_of) % len(_GLYPHS)]
        return glyph_of[job_id]

    grid: List[List[str]] = [["." for _ in range(slots)] for _ in range(trace.capacity)]
    for slot in range(slots):
        mid = t0 + (slot + 0.5) * time_step
        segment = next(
            (s for s in trace.segments if float(s.start) <= mid < float(s.end)), None
        )
        if segment is None:
            continue
        # stack jobs bottom-up in recorded order (defragmented view)
        row = 0
        for job_id, area in segment.running:
            g = glyph(job_id)
            for _ in range(area):
                if row < trace.capacity:
                    grid[row][slot] = g
                    row += 1

    lines = ["".join(r) for r in reversed(grid)]  # column 0 at the bottom
    legend = ", ".join(f"{g}={j}" for j, g in glyph_of.items())
    header = f"t: {t0:g} .. {t0 + slots * time_step:g} (step {time_step:g})"
    return "\n".join([header] + lines + [f"legend: {legend}" if legend else "legend: (idle)"])
