"""Release-offset search: tightening the simulation upper bound.

The paper (§6, citing Baker): "it is not possible to determine exact
schedulability without exhaustively simulating all possible task release
offsets, so we use simulation to provide a coarse upper bound."  The
synchronous pattern (all offsets 0) is *one* legal release pattern; any
pattern that misses a deadline proves the taskset unschedulable.  Random
offset sampling therefore refines the upper bound: the more patterns
survive, the more credible (but never certain) schedulability is.

Horizon-extension rule: shifting a task's first release to ``O_i``
removes jobs from a fixed window — it sees ``floor((H - O_i) / T_i)``
jobs before ``H`` instead of ``floor(H / T_i)`` — so simulating an
offset pattern over the *synchronous* window would silently check fewer
jobs per task and weaken the bound it claims to refine.
:func:`simulate_with_offsets` therefore extends each assignment's window
by its largest offset (``H + max_i O_i``); the synchronous assignment is
unaffected (its extension is 0).  The batched twin
(:func:`repro.vector.sim_vec.simulate_batch` with ``offsets=``) applies
the same rule through ``default_horizon_batch(..., offsets=...)``.
"""

from __future__ import annotations

from numbers import Real
from typing import Dict, Optional

import numpy as np

from repro.fpga.device import Fpga
from repro.model.task import TaskSet
from repro.sched.base import Scheduler
from repro.sim.simulator import SimulationResult, simulate


def sample_offsets(taskset: TaskSet, rng: np.random.Generator) -> Dict[str, float]:
    """One random offset assignment: each task uniform in ``[0, T_i)``."""
    return {t.name: float(rng.uniform(0.0, float(t.period))) for t in taskset}


def simulate_with_offsets(
    taskset: TaskSet,
    fpga: Fpga,
    scheduler: Scheduler,
    horizon: Real,
    rng: np.random.Generator,
    samples: int = 20,
    include_synchronous: bool = True,
    **simulate_kwargs,
) -> SimulationResult:
    """Simulate under several random offset assignments.

    Returns the first failing run (a *certificate of unschedulability*) or
    the last passing one.  ``include_synchronous`` prepends the paper's
    all-zero pattern, which is the classic worst-case heuristic.

    ``horizon`` is the synchronous-window length; each assignment's
    window is extended by its largest offset (the module's
    horizon-extension rule), so every task sees at least as many
    simulated jobs as the synchronous run would give it.
    """
    if samples < 0:
        raise ValueError("samples must be >= 0")
    assignments = []
    if include_synchronous:
        assignments.append({t.name: 0.0 for t in taskset})
    assignments.extend(sample_offsets(taskset, rng) for _ in range(samples))
    if not assignments:
        raise ValueError("nothing to simulate: no offsets requested")
    result: Optional[SimulationResult] = None
    for offsets in assignments:
        result = simulate(
            taskset,
            fpga,
            scheduler,
            horizon + max(offsets.values()),
            offsets=offsets,
            **simulate_kwargs,
        )
        if not result.schedulable:
            return result
    assert result is not None
    return result
