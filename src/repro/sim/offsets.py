"""Release-offset search: tightening the simulation upper bound.

The paper (§6, citing Baker): "it is not possible to determine exact
schedulability without exhaustively simulating all possible task release
offsets, so we use simulation to provide a coarse upper bound."  The
synchronous pattern (all offsets 0) is *one* legal release pattern; any
pattern that misses a deadline proves the taskset unschedulable.  Random
offset sampling therefore refines the upper bound: the more patterns
survive, the more credible (but never certain) schedulability is.

Two searches share that soundness argument:

* :func:`simulate_with_offsets` — the uniform search: independent
  assignments, each task uniform in ``[0, T_i)``;
* :func:`adaptive_offset_search` — the importance-sampled search: the
  same budget steered toward low-slack (near-miss) patterns by the
  cross-entropy machinery of :mod:`repro.search`.  It is the scalar
  twin of :func:`repro.search.adaptive_offset_search_batch` — same
  generator, same proposals, same patterns, bit-identical verdicts and
  slacks.

Both record a best-effort ``min_slack`` on the returned result: the
minimum near-miss slack over *every* pattern simulated (not just the
returned run), so callers can rank how close a surviving search came
to a counterexample even though the search stops at the first failure.

Horizon-extension rule: shifting a task's first release to ``O_i``
removes jobs from a fixed window — it sees ``floor((H - O_i) / T_i)``
jobs before ``H`` instead of ``floor(H / T_i)`` — so simulating an
offset pattern over the *synchronous* window would silently check fewer
jobs per task and weaken the bound it claims to refine.
:func:`simulate_with_offsets` therefore extends each assignment's window
by its largest offset (``H + max_i O_i``); the synchronous assignment is
unaffected (its extension is 0).  The batched twin
(:func:`repro.vector.sim_vec.simulate_batch` with ``offsets=``) applies
the same rule through ``default_horizon_batch(..., offsets=...)``.
"""

from __future__ import annotations

from numbers import Real
from typing import Dict, Optional

import numpy as np

from repro.fpga.device import Fpga
from repro.model.task import TaskSet
from repro.sched.base import Scheduler
from repro.search.adaptive import adaptive_pattern_search
from repro.search.patterns import offsets_from_unit
from repro.search.proposal import SearchConfig
from repro.sim.simulator import SimulationResult, simulate


def sample_offsets(taskset: TaskSet, rng: np.random.Generator) -> Dict[str, float]:
    """One random offset assignment: each task uniform in ``[0, T_i)``."""
    return {t.name: float(rng.uniform(0.0, float(t.period))) for t in taskset}


def _simulate_pattern(
    taskset: TaskSet,
    fpga: Fpga,
    scheduler: Scheduler,
    horizon: Real,
    offsets: Dict[str, float],
    **simulate_kwargs,
) -> SimulationResult:
    """One offset pattern over its extended window (``H + max O_i``);
    ``default=0.0`` keeps the empty-taskset case from crashing ``max``."""
    return simulate(
        taskset,
        fpga,
        scheduler,
        horizon + max(offsets.values(), default=0.0),
        offsets=offsets,
        **simulate_kwargs,
    )


def simulate_with_offsets(
    taskset: TaskSet,
    fpga: Fpga,
    scheduler: Scheduler,
    horizon: Real,
    rng: np.random.Generator,
    samples: int = 20,
    include_synchronous: bool = True,
    **simulate_kwargs,
) -> SimulationResult:
    """Simulate under several random offset assignments.

    Returns the first failing run (a *certificate of unschedulability*) or
    the last passing one.  ``include_synchronous`` prepends the paper's
    all-zero pattern, which is the classic worst-case heuristic.

    ``horizon`` is the synchronous-window length; each assignment's
    window is extended by its largest offset (the module's
    horizon-extension rule), so every task sees at least as many
    simulated jobs as the synchronous run would give it.

    The returned result's ``min_slack`` is the best-effort minimum over
    every pattern simulated before returning — the search-wide near-miss
    record, not just the returned run's.

    An empty taskset is trivially schedulable under every pattern: the
    search returns one synchronous run over the unextended window
    instead of crashing on the empty offset assignment.
    """
    if samples < 0:
        raise ValueError("samples must be >= 0")
    if len(taskset) == 0:
        # Every "pattern" of an empty set is the empty pattern; one run
        # certifies them all (and max() over no offsets never happens).
        return simulate(taskset, fpga, scheduler, horizon, **simulate_kwargs)
    assignments = []
    if include_synchronous:
        assignments.append({t.name: 0.0 for t in taskset})
    assignments.extend(sample_offsets(taskset, rng) for _ in range(samples))
    if not assignments:
        raise ValueError("nothing to simulate: no offsets requested")
    best_slack: Real = float("inf")
    result: Optional[SimulationResult] = None
    for offsets in assignments:
        result = _simulate_pattern(
            taskset, fpga, scheduler, horizon, offsets, **simulate_kwargs
        )
        if result.min_slack < best_slack:
            best_slack = result.min_slack
        if not result.schedulable:
            break
    assert result is not None
    result.min_slack = best_slack
    return result


def adaptive_offset_search(
    taskset: TaskSet,
    fpga: Fpga,
    scheduler: Scheduler,
    horizon: Real,
    rng: np.random.Generator,
    budget: int = 20,
    config: SearchConfig = SearchConfig(),
    include_synchronous: bool = True,
    **simulate_kwargs,
) -> SimulationResult:
    """Importance-sampled offset search (scalar twin of the batched
    :func:`repro.search.adaptive_offset_search_batch`).

    Spends ``budget`` patterns steered by the cross-entropy loop of
    :mod:`repro.search`: round 0 explores uniformly, later rounds sample
    per-task proposals refit on the lowest-slack patterns.  Every sample
    stays a legal offset assignment (``u * T_i in [0, T_i)``), so a
    found miss certifies unschedulability exactly as in the uniform
    search; ``include_synchronous`` prepends the all-zero pattern
    (checked first, outside the budget).

    Returns the first failing run or the last passing one, with
    ``min_slack`` recording the search-wide best effort.  With the same
    ``rng`` stream as row ``b`` of the batched driver (``rngs[b]``),
    the sampled patterns — and hence verdicts and slacks — are
    bit-identical.
    """
    if budget < 0:
        raise ValueError("budget must be >= 0")
    if len(taskset) == 0:
        return simulate(taskset, fpga, scheduler, horizon, **simulate_kwargs)
    best_slack: Real = float("inf")
    result: Optional[SimulationResult] = None
    if include_synchronous:
        result = _simulate_pattern(
            taskset, fpga, scheduler, horizon,
            {t.name: 0.0 for t in taskset}, **simulate_kwargs,
        )
        best_slack = result.min_slack
        if not result.schedulable:
            return result
    if budget == 0 and result is None:
        raise ValueError("nothing to simulate: no offsets requested")

    names = [t.name for t in taskset]
    periods = np.array([float(t.period) for t in taskset], dtype=np.float64)

    def score(live: np.ndarray, u: np.ndarray):
        nonlocal best_slack, result
        _, patterns, _ = u.shape
        offs = offsets_from_unit(periods[None, None, :], u)[0]
        slack = np.empty((1, patterns), dtype=np.float64)
        ok = np.empty((1, patterns), dtype=bool)
        for p in range(patterns):
            assignment = {name: float(offs[p, j]) for j, name in enumerate(names)}
            res = _simulate_pattern(
                taskset, fpga, scheduler, horizon, assignment, **simulate_kwargs
            )
            slack[0, p] = res.min_slack
            ok[0, p] = res.schedulable
            if result is None or result.schedulable:
                result = res
            if res.min_slack < best_slack:
                best_slack = res.min_slack
        return slack, ok

    adaptive_pattern_search(1, len(taskset), score, [rng], budget, config)
    assert result is not None
    result.min_slack = best_slack
    return result
