"""Discrete-event simulation of EDF scheduling on a 1D PRTR FPGA.

The paper uses simulation (all tasks released at time 0) as a coarse
*upper bound* on schedulability — exact schedulability would require
exhausting all release offsets (§6).  This package provides:

* :func:`simulate` — event-driven simulation under EDF-FkF / EDF-NF (or
  any :class:`~repro.sched.base.Scheduler`), in the paper's
  free-migration model or in placement-constrained modes (§7 extensions);
* :class:`Trace` — execution segments with checkers for the Lemma 1/2
  α-occupancy invariants;
* :mod:`repro.sim.offsets` / :mod:`repro.sim.sporadic` — release-offset
  and jittered inter-arrival searches that tighten the simulation upper
  bound, uniform (``simulate_with_offsets`` / ``simulate_sporadic``)
  and importance-sampled (``adaptive_offset_search`` /
  ``adaptive_sporadic_search``, the scalar twins of the
  :mod:`repro.search` batched drivers).  The offset searches extend
  each pattern's window by its largest offset so shifted tasks never
  see fewer simulated jobs than the synchronous run; the batched twins
  live in :mod:`repro.vector.sim_vec`.
"""

from repro.sim.simulator import (
    MigrationMode,
    SimulationConfig,
    SimulationResult,
    DeadlineMiss,
    default_horizon,
    simulate,
)
from repro.sim.metrics import SimMetrics
from repro.sim.trace import Trace, TraceSegment
from repro.sim.offsets import (
    adaptive_offset_search,
    sample_offsets,
    simulate_with_offsets,
)
from repro.sim.reference import ReferenceResult, simulate_reference
from repro.sim.hyperperiod import SynchronousVerdict, decide_synchronous
from repro.sim.gantt import render_gantt
from repro.sim.workload_measure import (
    WindowMeasurement,
    measure_workload_bounds,
    tightness_summary,
)
from repro.sim.sporadic import (
    adaptive_sporadic_search,
    sample_release_schedule,
    simulate_release_schedule,
    simulate_sporadic,
)

__all__ = [
    "MigrationMode",
    "SimulationConfig",
    "SimulationResult",
    "DeadlineMiss",
    "default_horizon",
    "simulate",
    "SimMetrics",
    "Trace",
    "TraceSegment",
    "adaptive_offset_search",
    "sample_offsets",
    "simulate_with_offsets",
    "ReferenceResult",
    "simulate_reference",
    "SynchronousVerdict",
    "decide_synchronous",
    "render_gantt",
    "WindowMeasurement",
    "measure_workload_bounds",
    "tightness_summary",
    "adaptive_sporadic_search",
    "sample_release_schedule",
    "simulate_release_schedule",
    "simulate_sporadic",
]
