"""A deliberately-simple quantized reference simulator.

Cross-validation oracle for the event-driven engine in
:mod:`repro.sim.simulator`: steps time in unit quanta, re-running the
scheduler every tick.  For workloads whose parameters (C, D, T, offsets)
are all integers, every scheduling event falls on an integer instant, so
this brute-force simulation is *exact* — and so trivially written that
its correctness is auditable at a glance.  The property tests assert the
two simulators agree on verdicts, busy area-time, completions and first
miss time over randomized integer workloads.

Free-migration mode only, zero reconfiguration overhead (the paper's
model); the event-driven simulator owns the extensions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro.fpga.device import Fpga
from repro.model.job import Job
from repro.model.task import TaskSet
from repro.sched.base import Scheduler


@dataclass(frozen=True)
class ReferenceResult:
    """Outcome of a quantized run (minimal, comparison-oriented)."""

    schedulable: bool
    first_miss_time: Optional[int]
    jobs_released: int
    jobs_completed: int
    busy_area_time: int


def _require_integer(value, what: str) -> int:
    if value != int(value):
        raise ValueError(f"reference simulator requires integer {what}, got {value}")
    return int(value)


def simulate_reference(
    taskset: TaskSet,
    fpga: Fpga,
    scheduler: Scheduler,
    horizon: int,
    offsets: Optional[Mapping[str, int]] = None,
    stop_at_first_miss: bool = True,
) -> ReferenceResult:
    """Quantum-by-quantum simulation over ``[0, horizon)`` (integers only)."""
    horizon = _require_integer(horizon, "horizon")
    if horizon <= 0:
        raise ValueError("horizon must be > 0")
    offsets = dict(offsets or {})
    for t in taskset:
        _require_integer(t.wcet, f"wcet of {t.name}")
        _require_integer(t.period, f"period of {t.name}")
        _require_integer(t.deadline, f"deadline of {t.name}")
        _require_integer(t.area, f"area of {t.name}")
    for name, off in offsets.items():
        _require_integer(off, f"offset of {name}")

    capacity = fpga.capacity
    next_release: Dict[str, int] = {
        t.name: int(offsets.get(t.name, 0)) for t in taskset
    }
    counters: Dict[str, int] = {t.name: 0 for t in taskset}
    active: List[Job] = []
    missed_ids: set[str] = set()
    released = completed = busy = 0
    first_miss: Optional[int] = None

    for now in range(horizon):
        # releases at `now`
        for t in taskset:
            while next_release[t.name] <= now:
                active.append(
                    Job(task=t, release=next_release[t.name], index=counters[t.name])
                )
                counters[t.name] += 1
                released += 1
                next_release[t.name] += int(t.period)
        # run one quantum
        running = scheduler.select(active, capacity)
        for job in running:
            job.remaining -= 1
            busy += int(job.area)
        # completions at `now + 1`
        for job in [j for j in running if j.remaining <= 0]:
            active.remove(job)
            completed += 1
        # misses: any active job whose deadline is `now + 1` and that still
        # has work left (completions above already removed the on-time ones)
        for job in active:
            jid = f"{job.task.name}#{job.index}"
            if jid in missed_ids:
                continue
            if job.absolute_deadline <= now + 1 and job.remaining > 0:
                missed_ids.add(jid)
                if first_miss is None:
                    first_miss = now + 1
        if first_miss is not None and stop_at_first_miss:
            break

    return ReferenceResult(
        schedulable=first_miss is None,
        first_miss_time=first_miss,
        jobs_released=released,
        jobs_completed=completed,
        busy_area_time=busy,
    )
