"""Empirical validation of the Lemma 4 workload bound.

GN1 rests on Lemma 4: the time work ``W_i`` a task can do inside a job's
problem window ``[r_k, d_k)`` is at most
``N_i C_i + min(C_i, max(D_k - N_i T_i, 0))``.  This module *measures*
``W_i`` in recorded simulation traces and compares it against the bound:

* soundness — no observed window may ever exceed the bound (a violation
  would falsify the lemma or expose a simulator bug; property-tested);
* tightness — the mean observed/bound ratio quantifies how much of GN1's
  pessimism comes from this bound alone (the `ablation-tightness` bench).
"""

from __future__ import annotations

from dataclasses import dataclass
from numbers import Real
from typing import Dict, List, Tuple

from repro.core.workload import bcl_workload_bound
from repro.model.task import Task, TaskSet
from repro.sim.trace import Trace
from repro.util.mathutil import float_floor_div


@dataclass(frozen=True)
class WindowMeasurement:
    """Observed vs bounded workload of ``interferer`` in one job window."""

    window_task: str
    window_release: Real
    interferer: str
    observed: Real
    bound: Real

    @property
    def ratio(self) -> float:
        """observed / bound (0 when the bound is 0 — then observed is too)."""
        if self.bound == 0:
            return 0.0
        return float(self.observed) / float(self.bound)

    @property
    def sound(self) -> bool:
        """observed <= bound, with float-summation tolerance.

        The observed work is a sum of trace-segment lengths; with float
        times the accumulated representation error is ~1e-12 per window,
        so exact comparison would flag phantom violations at windows that
        ATTAIN the bound (which deadline-aligned patterns legitimately do).
        Exact-arithmetic traces (Fraction times) compare exactly.
        """
        if isinstance(self.observed, float) or isinstance(self.bound, float):
            scale = max(1.0, abs(float(self.bound)))
            return float(self.observed) <= float(self.bound) + 1e-9 * scale
        return self.observed <= self.bound


def executed_in_interval(
    trace: Trace,
    task_name: str,
    start: Real,
    end: Real,
    max_job_index: int | None = None,
) -> Real:
    """Total time jobs of ``task_name`` executed during ``[start, end)``.

    ``max_job_index`` restricts the count to jobs ``#0..#max_job_index``
    — used to exclude carry-out jobs whose deadlines lie beyond the
    window (they cannot interfere under EDF; see
    :func:`measure_workload_bounds`).
    """
    total: Real = 0
    prefix = f"{task_name}#"
    for seg in trace.segments:
        lo = seg.start if seg.start > start else start
        hi = seg.end if seg.end < end else end
        if hi <= lo:
            continue
        for jid, _ in seg.running:
            if not jid.startswith(prefix):
                continue
            if max_job_index is not None and int(jid[len(prefix):]) > max_job_index:
                continue
            total = total + (hi - lo)
            break  # at most one job of a task runs at a time
    return total


def measure_workload_bounds(
    taskset: TaskSet, trace: Trace, horizon: Real
) -> List[WindowMeasurement]:
    """All (window, interferer) measurements over a synchronous trace.

    Windows are the problem windows ``[r_k, r_k + D_k)`` of every job of
    every task released (synchronously) inside the horizon.

    Two scoping rules keep the comparison faithful to what Lemma 4
    actually bounds:

    * ``horizon`` must not extend past the first deadline miss — the
      lemma applies along the miss-free prefix; tardy jobs executing
      beyond their deadlines can exceed it (simulate with
      ``stop_at_first_miss=True``, measure ``metrics.simulated_time``);
    * only jobs of ``tau_i`` with absolute deadline **at or before the
      window end** are counted.  A later-deadline (carry-out) job has
      lower EDF priority than the window's job, so it executes only on
      capacity the window's job is not using — it is *work*, but not
      *interference*, and Lemma 4 bounds the interference-relevant
      workload (its deadline-aligned worst case has no carry-out).
    """
    out: List[WindowMeasurement] = []
    for task_k in taskset:
        release: Real = 0
        while release + task_k.deadline <= horizon:
            window_end = release + task_k.deadline
            for task_i in taskset:
                if task_i.name == task_k.name:
                    continue
                # Largest synchronous job index of τi with deadline <= end:
                # j*T_i + D_i <= window_end.
                max_idx = float_floor_div(window_end - task_i.deadline, task_i.period)
                if max_idx < 0:
                    max_idx = None  # no eligible job: count nothing
                observed = (
                    executed_in_interval(
                        trace, task_i.name, release, window_end, max_job_index=max_idx
                    )
                    if max_idx is not None
                    else 0
                )
                out.append(
                    WindowMeasurement(
                        window_task=task_k.name,
                        window_release=release,
                        interferer=task_i.name,
                        observed=observed,
                        bound=bcl_workload_bound(task_i, task_k.deadline),
                    )
                )
            release = release + task_k.period
    return out


def tightness_summary(
    measurements: List[WindowMeasurement],
) -> Dict[str, float]:
    """Aggregate soundness/tightness statistics for a measurement batch."""
    if not measurements:
        return {"count": 0, "violations": 0, "mean_ratio": 0.0, "max_ratio": 0.0}
    ratios = [m.ratio for m in measurements]
    return {
        "count": len(measurements),
        "violations": sum(not m.sound for m in measurements),
        "mean_ratio": sum(ratios) / len(ratios),
        "max_ratio": max(ratios),
    }
