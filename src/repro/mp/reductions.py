"""FPGA <-> multiprocessor embeddings (paper §1).

"We can view multiprocessor scheduling as a special case of task
scheduling on 1D reconfigurable FPGAs where all tasks have width equal
to 1."  These helpers realize that embedding, and the test-suite uses
them to assert the reduction identities:

* DP  on unit-area tasks over ``Fpga(m)``  ==  GFB on ``m`` CPUs,
* GN1 (window variant) likewise            ==  BCL,
* GN2 likewise                             ==  BAK2.
"""

from __future__ import annotations

from numbers import Real

from repro.fpga.device import Fpga
from repro.model.task import Task, TaskSet


def cpu_task(
    wcet: Real, period: Real, deadline: Real | None = None, name: str | None = None
) -> Task:
    """A software (CPU) task: a hardware task of width 1."""
    kwargs = dict(wcet=wcet, period=period, deadline=deadline, area=1)
    if name is not None:
        kwargs["name"] = name
    return Task(**kwargs)


def platform_for(processors: int) -> Fpga:
    """The 1D device equivalent of ``m`` identical processors."""
    if processors < 1:
        raise ValueError("processors must be >= 1")
    return Fpga(width=processors)


def as_unit_area_taskset(taskset: TaskSet) -> TaskSet:
    """Flatten all areas to 1 (forget spatial demand, keep timing)."""
    return taskset.map(lambda t: t.with_area(1))
