"""GFB — Goossens, Funk & Baruah's global-EDF utilization bound.

For implicit-deadline sporadic tasks on ``m`` identical processors,
global EDF meets all deadlines if::

    UT(Γ) <= m - (m - 1) * u_max      (equivalently, for every task k:
    UT(Γ) <= m (1 - u_k) + u_k)

This is the multiprocessor ancestor of the paper's DP test: substituting
unit areas and ``A(H) = m`` into Theorem 1 recovers exactly this bound —
a property the cross-validation tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.interfaces import PerTaskVerdict, SchedulerKind, TestResult
from repro.model.task import TaskSet


@dataclass(frozen=True)
class GfbTest:
    """GFB bound on ``processors`` identical CPUs."""

    processors: int

    name = "GFB"
    schedulers = frozenset(SchedulerKind)  # FkF and NF coincide on CPUs

    def __post_init__(self) -> None:
        if self.processors < 1:
            raise ValueError("processors must be >= 1")

    def __call__(self, taskset: TaskSet) -> TestResult:
        m = self.processors
        ut = taskset.time_utilization
        verdicts = []
        accepted = True
        for t in taskset:
            u_k = t.time_utilization
            if u_k > 1:
                verdicts.append(PerTaskVerdict(t.name, False, u_k, 1, "u_k > 1"))
                accepted = False
                continue
            rhs = m * (1 - u_k) + u_k
            ok = ut <= rhs
            accepted &= ok
            verdicts.append(
                PerTaskVerdict(t.name, ok, ut, rhs, "UT(Γ) <= m(1-u_k) + u_k")
            )
        return TestResult(self.name, accepted, self.schedulers, tuple(verdicts))


def gfb_test(taskset: TaskSet, processors: int) -> TestResult:
    """Functional form of :class:`GfbTest`."""
    return GfbTest(processors)(taskset)
