"""BCL — Bertogna, Cirinei & Lipari's improved global-EDF test (ECRTS'05).

For constrained-deadline sporadic tasks on ``m`` identical processors,
global EDF is schedulable if for every task ``tau_k``::

    sum_{i != k} min(β_i, 1 - λ_k)  <  m (1 - λ_k),    λ_k = C_k / D_k

with ``β_i = W_i(D_k) / D_k`` and ``W_i`` the deadline-aligned workload
bound of Lemma 4.  This is the multiprocessor ancestor of GN1: Theorem 2
with unit areas and window normalization recovers it exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.interfaces import PerTaskVerdict, SchedulerKind, TestResult
from repro.core.workload import bcl_workload_bound
from repro.model.task import TaskSet
from repro.util.mathutil import exact_div


@dataclass(frozen=True)
class BclTest:
    """BCL bound on ``processors`` identical CPUs."""

    processors: int

    name = "BCL"
    schedulers = frozenset(SchedulerKind)

    def __post_init__(self) -> None:
        if self.processors < 1:
            raise ValueError("processors must be >= 1")

    def __call__(self, taskset: TaskSet) -> TestResult:
        m = self.processors
        verdicts = []
        accepted = True
        for k, task_k in enumerate(taskset):
            if not task_k.feasible_alone:
                verdicts.append(
                    PerTaskVerdict(task_k.name, False, task_k.wcet, task_k.deadline, "C > D")
                )
                accepted = False
                continue
            slack_rate = 1 - task_k.density
            lhs = 0
            for i, task_i in enumerate(taskset):
                if i == k:
                    continue
                beta = exact_div(
                    bcl_workload_bound(task_i, task_k.deadline), task_k.deadline
                )
                lhs += beta if beta < slack_rate else slack_rate
            rhs = m * slack_rate
            ok = lhs < rhs
            accepted &= ok
            verdicts.append(
                PerTaskVerdict(
                    task_k.name, ok, lhs, rhs, "Σ_{i≠k} min(β_i, 1-λ_k) < m(1-λ_k)"
                )
            )
        return TestResult(self.name, accepted, self.schedulers, tuple(verdicts))


def bcl_test(taskset: TaskSet, processors: int) -> TestResult:
    """Functional form of :class:`BclTest`."""
    return BclTest(processors)(taskset)
