"""Identical-multiprocessor global-EDF baselines (the paper's lineage).

The FPGA problem generalizes multiprocessor scheduling: a CPU task is a
width-1 HW task and an ``m``-processor platform is a 1D device with
``A(H) = m`` (paper §1).  This package implements the three utilization
bound tests the paper's analysis descends from:

* :func:`gfb_test`  — Goossens/Funk/Baruah (basis of DP),
* :func:`bcl_test`  — Bertogna/Cirinei/Lipari (basis of GN1),
* :func:`bak2_test` — Baker's busy-interval λ test (basis of GN2),

plus the embedding helpers in :mod:`repro.mp.reductions` used by the
cross-validation tests (unit-area FPGA tests must coincide with these).
"""

from repro.mp.gfb import gfb_test
from repro.mp.bcl import bcl_test
from repro.mp.bak2 import bak2_test
from repro.mp.reductions import (
    cpu_task,
    platform_for,
    as_unit_area_taskset,
)

__all__ = [
    "gfb_test",
    "bcl_test",
    "bak2_test",
    "cpu_task",
    "platform_for",
    "as_unit_area_taskset",
]
