"""BAK2 — Baker's further-improved global-EDF λ test (TR-051001 shape).

Combines BCL's slack-truncated interference with BAK1's busy-interval
(problem-window extension) analysis: for every ``tau_k`` there must exist
``λ >= C_k/T_k`` such that, with ``λ_k = λ max(1, T_k/D_k)`` and β from
Lemma 7, one of::

    1)  Σ_i min(β^λ_k(i), 1 - λ_k)  <  m (1 - λ_k)
    2)  Σ_i min(β^λ_k(i), 1)        <  (m - 1)(1 - λ_k) + 1

holds.  This is the multiprocessor ancestor of GN2: Theorem 3 with unit
areas (``Amax = Amin = 1``, ``Abnd = m``) recovers it exactly — asserted
by the reduction tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.gn2 import LambdaWitness
from repro.core.interfaces import PerTaskVerdict, SchedulerKind, TestResult
from repro.core.workload import gn2_beta, gn2_lambda_candidates
from repro.model.task import TaskSet
from repro.util.mathutil import exact_div


@dataclass(frozen=True)
class Bak2Test:
    """BAK2-style λ test on ``processors`` identical CPUs.

    ``strict_condition2`` mirrors :class:`repro.core.gn2.Gn2Test` so the
    unit-area reduction is exact under either convention.
    """

    processors: int
    strict_condition2: bool = True

    name = "BAK2"
    schedulers = frozenset(SchedulerKind)

    def __post_init__(self) -> None:
        if self.processors < 1:
            raise ValueError("processors must be >= 1")

    def find_witness(self, taskset: TaskSet, k: int) -> Optional[LambdaWitness]:
        m = self.processors
        task_k = taskset[k]
        t_over_d = exact_div(task_k.period, task_k.deadline)
        lam_scale = t_over_d if t_over_d > 1 else 1
        for lam in gn2_lambda_candidates(taskset, task_k):
            lam_k = lam * lam_scale
            one_minus = 1 - lam_k
            lhs1 = 0
            lhs2 = 0
            for task_i in taskset:
                beta = gn2_beta(task_i, task_k, lam)
                lhs1 += beta if beta < one_minus else one_minus
                lhs2 += beta if beta < 1 else 1
            if lhs1 < m * one_minus:
                return LambdaWitness(lam, 1)
            rhs2 = (m - 1) * one_minus + 1
            if (lhs2 < rhs2) or (not self.strict_condition2 and lhs2 == rhs2):
                return LambdaWitness(lam, 2)
        return None

    def __call__(self, taskset: TaskSet) -> TestResult:
        verdicts = []
        accepted = True
        for k, task_k in enumerate(taskset):
            if not task_k.feasible_alone or task_k.time_utilization > 1:
                verdicts.append(PerTaskVerdict(task_k.name, False, detail="infeasible task"))
                accepted = False
                continue
            witness = self.find_witness(taskset, k)
            ok = witness is not None
            accepted &= ok
            verdicts.append(
                PerTaskVerdict(
                    task_k.name,
                    ok,
                    detail=(
                        f"certified by λ={witness.lam} via condition {witness.condition}"
                        if witness
                        else "no λ candidate works"
                    ),
                )
            )
        return TestResult(self.name, accepted, self.schedulers, tuple(verdicts))


def bak2_test(taskset: TaskSet, processors: int) -> TestResult:
    """Functional form of :class:`Bak2Test`."""
    return Bak2Test(processors)(taskset)
