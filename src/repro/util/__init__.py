"""Shared numeric and infrastructure utilities."""

from repro.util.mathutil import (
    exact_div,
    fraction_lcm,
    hyperperiod,
    is_close,
    lcm_many,
)
from repro.util.rngutil import spawn_rngs, rng_from_seed

__all__ = [
    "exact_div",
    "fraction_lcm",
    "hyperperiod",
    "is_close",
    "lcm_many",
    "spawn_rngs",
    "rng_from_seed",
]
