"""Numeric helpers: exact division, lcm/hyperperiod, tolerant comparison.

The schedulability tests are evaluated either in floats (experiments) or in
exact rationals (regression tests on the paper's knife-edge examples), so
helpers here must preserve exactness when given ``int``/``Fraction`` inputs.
"""

from __future__ import annotations

import math
from fractions import Fraction
from numbers import Real
from typing import Iterable, Sequence

#: Default absolute tolerance for float time comparisons in the simulator.
TIME_EPS = 1e-9


def exact_div(num: Real, den: Real):
    """``num / den`` that yields a :class:`Fraction` for exact operand types.

    ``float`` operands fall back to float division; ``int`` and ``Fraction``
    operands stay exact.
    """
    if isinstance(num, float) or isinstance(den, float):
        return num / den
    return Fraction(num) / Fraction(den)


def fraction_lcm(a: Fraction, b: Fraction) -> Fraction:
    """Least common multiple of two positive rationals.

    ``lcm(p1/q1, p2/q2) = lcm(p1, p2) / gcd(q1, q2)`` — the smallest
    rational that is an integer multiple of both.
    """
    if a <= 0 or b <= 0:
        raise ValueError("lcm requires positive operands")
    a, b = Fraction(a), Fraction(b)
    return Fraction(
        math.lcm(a.numerator, b.numerator), math.gcd(a.denominator, b.denominator)
    )


def lcm_many(values: Iterable[Real]) -> Fraction:
    """LCM of many positive rationals (ints accepted; floats rejected).

    Floats are rejected because binary floats rarely represent the intended
    periods exactly and the resulting "hyperperiod" would be garbage; convert
    deliberately with :class:`Fraction` first if that is really wanted.
    """
    result: Fraction | None = None
    for v in values:
        if isinstance(v, float):
            raise TypeError(
                "lcm of floats is ill-defined; convert periods to Fraction first"
            )
        f = Fraction(v)
        result = f if result is None else fraction_lcm(result, f)
    if result is None:
        raise ValueError("lcm of empty sequence")
    return result


def hyperperiod(periods: Sequence[Real]) -> Fraction:
    """Hyperperiod (LCM of periods) of a taskset with rational periods.

    For synchronous periodic tasksets the schedule repeats with this period,
    so simulating ``[0, hyperperiod)`` (plus the largest deadline) decides
    schedulability of the synchronous pattern exactly.
    """
    return lcm_many(periods)


def is_close(a: Real, b: Real, eps: float = TIME_EPS) -> bool:
    """Tolerant equality: exact for int/Fraction, ``abs`` tolerance for floats."""
    if isinstance(a, float) or isinstance(b, float):
        return abs(a - b) <= eps
    return a == b


def float_floor_div(num: Real, den: Real) -> int:
    """``floor(num/den)`` robust to float representation error.

    When ``num/den`` lands within :data:`TIME_EPS` *below* an integer, the
    intended mathematical value is that integer (e.g. ``floor(0.3/0.1)``
    must be 3, not 2).  Exact types use true floor division.
    """
    if not (isinstance(num, float) or isinstance(den, float)):
        return math.floor(Fraction(num) / Fraction(den))
    q = num / den
    fq = math.floor(q)
    if fq + 1 - q <= TIME_EPS:
        return fq + 1
    return fq
