"""Deterministic random-number-generator plumbing.

Every stochastic component (taskset generators, offset samplers, the
experiment engine) takes a :class:`numpy.random.Generator`.  These helpers
create and split generators reproducibly so experiments are exactly
re-runnable and parallelizable without stream overlap.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def rng_from_seed(seed: int | None) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` (PCG64) from a seed.

    ``None`` draws OS entropy — only appropriate for exploratory use;
    experiments should always pass an explicit seed.
    """
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | None, n: int) -> Sequence[np.random.Generator]:
    """Split one seed into ``n`` independent child generators.

    Uses :class:`numpy.random.SeedSequence` spawning, which guarantees
    non-overlapping streams — the standard pattern for parallel workers.
    """
    if n < 0:
        raise ValueError("n must be >= 0")
    ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]
