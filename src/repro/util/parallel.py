"""Optional process-level parallelism for embarrassingly parallel sweeps.

The acceptance-ratio experiments evaluate thousands of independent
tasksets; :func:`parallel_map` fans them out over a process pool when
``workers > 1`` and degrades to a plain ``map`` otherwise (keeping
single-process determinism and debuggability — see the HPC guide's advice
to keep the serial path primary).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def default_workers() -> int:
    """A conservative default worker count (leave one core free)."""
    return max(1, (os.cpu_count() or 2) - 1)


#: an item is "cheap" below this many cost units (see ``item_cost``) —
#: cheap items are bundled so one pickled work unit carries at least
#: this much work, expensive items travel alone.
_MIN_CHUNK_COST = 64


def default_chunksize(
    n_items: int, workers: int, item_cost: Optional[int] = None
) -> int:
    """Items per pickled work unit.

    Without ``item_cost``: ~4 chunks per worker.  ``chunksize=1`` pays
    one pickle round-trip per item — ruinous for thousands of
    sub-millisecond simulation jobs — so four chunks per worker
    amortizes that overhead while still load-balancing uneven item
    costs.

    With ``item_cost`` (relative work per item, e.g. rows per sub-batch
    for a sharded simulation): the chunksize is driven by *work*, not
    item count.  An expensive item (>= ``_MIN_CHUNK_COST``) is already
    worth a round-trip and ships alone — the count-based rule would
    bundle a handful of sub-batches into one chunk and starve every
    other worker.  Cheap items are bundled until a chunk reaches
    ``_MIN_CHUNK_COST`` units, still capped at an even worker split.
    """
    if n_items < 1 or workers < 1:
        return 1
    if item_cost is None:
        return max(1, n_items // (workers * 4))
    if item_cost < 1:
        raise ValueError(f"item_cost must be >= 1, got {item_cost!r}")
    amortize = -(-_MIN_CHUNK_COST // item_cost)  # ceil
    even_split = -(-n_items // workers)  # never idle a worker to bundle
    return max(1, min(amortize, even_split))


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T] | Iterable[T],
    workers: int = 1,
    chunksize: Optional[int] = None,
    item_cost: Optional[int] = None,
) -> List[R]:
    """Map ``fn`` over ``items``, optionally with a process pool.

    ``fn`` and the items must be picklable when ``workers > 1``.  Result
    order always matches input order.  ``chunksize`` defaults to
    :func:`default_chunksize`; pass an explicit value to override, or
    ``item_cost`` (relative work per item) to let the default derive the
    chunk from per-item cost rather than item count — sub-batch items
    get ``chunksize=1`` instead of tiny-chunk bundling.
    """
    items = list(items)
    if workers <= 1 or len(items) <= 1:
        return [fn(x) for x in items]
    if chunksize is None:
        chunksize = default_chunksize(len(items), workers, item_cost)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items, chunksize=max(1, chunksize)))
