"""Optional process-level parallelism for embarrassingly parallel sweeps.

The acceptance-ratio experiments evaluate thousands of independent
tasksets; :func:`parallel_map` fans them out over a process pool when
``workers > 1`` and degrades to a plain ``map`` otherwise (keeping
single-process determinism and debuggability — see the HPC guide's advice
to keep the serial path primary).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def default_workers() -> int:
    """A conservative default worker count (leave one core free)."""
    return max(1, (os.cpu_count() or 2) - 1)


def default_chunksize(n_items: int, workers: int) -> int:
    """Items per pickled work unit: ~4 chunks per worker.

    ``chunksize=1`` pays one pickle round-trip per item — ruinous for
    thousands of sub-millisecond simulation jobs.  Four chunks per
    worker amortizes that overhead while still load-balancing uneven
    item costs.
    """
    if n_items < 1 or workers < 1:
        return 1
    return max(1, n_items // (workers * 4))


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T] | Iterable[T],
    workers: int = 1,
    chunksize: Optional[int] = None,
) -> List[R]:
    """Map ``fn`` over ``items``, optionally with a process pool.

    ``fn`` and the items must be picklable when ``workers > 1``.  Result
    order always matches input order.  ``chunksize`` defaults to
    :func:`default_chunksize`; pass an explicit value to override.
    """
    items = list(items)
    if workers <= 1 or len(items) <= 1:
        return [fn(x) for x in items]
    if chunksize is None:
        chunksize = default_chunksize(len(items), workers)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items, chunksize=max(1, chunksize)))
