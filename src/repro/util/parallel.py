"""Optional process-level parallelism for embarrassingly parallel sweeps.

The acceptance-ratio experiments evaluate thousands of independent
tasksets; :func:`parallel_map` fans them out over a process pool when
``workers > 1`` and degrades to a plain ``map`` otherwise (keeping
single-process determinism and debuggability — see the HPC guide's advice
to keep the serial path primary).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def default_workers() -> int:
    """A conservative default worker count (leave one core free)."""
    return max(1, (os.cpu_count() or 2) - 1)


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T] | Iterable[T],
    workers: int = 1,
    chunksize: int = 1,
) -> List[R]:
    """Map ``fn`` over ``items``, optionally with a process pool.

    ``fn`` and the items must be picklable when ``workers > 1``.  Result
    order always matches input order.
    """
    items = list(items)
    if workers <= 1 or len(items) <= 1:
        return [fn(x) for x in items]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items, chunksize=max(1, chunksize)))
