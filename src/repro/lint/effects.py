"""Pass 1, second half: per-function effect sets and their fixpoint.

Effects form a small powerset lattice over five atoms:

``RNG``
    draws randomness (constructor, global-state draw, or draw-shaped
    method call) — skipped inside the sanctioned sampler modules
    (``config.RNG_ALLOWED_MODULES``) and the named host-side samplers
    (``config.RNG_SANCTIONED_FUNCTIONS``), whose draws are the
    documented seed->stream contract, not a violation to propagate.
``WALL_CLOCK``
    reads a wall clock (``config.WALL_CLOCK_CALLS``) — skipped inside
    ``config.WALL_CLOCK_ALLOWED_MODULES`` (the service clock shim).
``HOST_SYNC``
    forces a host-device round-trip (``config.HOST_SYNC_METHODS``,
    zero-arg ``.get()`` rule as in RL005).
``DEVICE_TRANSFER``
    moves data across the host-device boundary
    (``config.DEVICE_TRANSFER_CALLS``) — informative only.
``STATE_MUTATION``
    mutates shared state: ``global``/``nonlocal``, stores through
    ``self``/``cls`` attributes, or a ``config.ASYNC_MUTATOR_METHODS``
    call on ``self``-rooted state.

Seeds are purely syntactic per function; :func:`fixpoint` unions each
function's seeds with its resolved callees' effect sets until nothing
changes.  Set union is monotone on a finite lattice, so the fixpoint
exists, terminates, and is independent of file or visit order — the
determinism the byte-stable ``--effects`` report and its checked-in CI
baseline rely on.

:class:`ProjectSummary` is the picklable (AST-free) result handed to
pass 2, including to ``--jobs`` worker processes.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.lint import callgraph, config
from repro.lint.callgraph import FunctionDecl, ModuleDecls

#: The effect atoms, in canonical (report) order.
EFFECTS: Tuple[str, ...] = (
    "RNG", "WALL_CLOCK", "HOST_SYNC", "DEVICE_TRANSFER", "STATE_MUTATION",
)

EFFECTS_FORMAT_VERSION = 1

_EMPTY: FrozenSet[str] = frozenset()


@dataclass(frozen=True)
class ProjectSummary:
    """The whole-program analysis result pass 2 consumes.

    Picklable by construction: plain dicts/tuples/frozensets, no AST
    nodes — ``--jobs`` ships one copy to every lint worker.
    """

    #: every module that participated in the analysis
    modules: FrozenSet[str] = _EMPTY
    #: function qualname -> effect set after the fixpoint
    functions: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    #: function qualname -> syntactically seeded effects (fixpoint input)
    seeds: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    #: function qualname -> sorted resolved callee qualnames
    calls: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: class qualname -> base-class dotted-name candidates
    classes: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    def effects_of(self, qualname: str) -> FrozenSet[str]:
        return self.functions.get(qualname, _EMPTY)


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _call_target(func: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    dotted = _dotted(func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    expanded = aliases.get(head, head)
    return f"{expanded}.{rest}" if rest else expanded


def _self_rooted(node: ast.AST) -> bool:
    while isinstance(node, ast.Attribute):
        node = node.value
    return isinstance(node, ast.Name) and node.id in ("self", "cls")


def _store_root(target: ast.AST) -> Optional[ast.AST]:
    """The attribute/subscript chain a store mutates, if any."""
    if isinstance(target, (ast.Attribute, ast.Subscript)):
        return target
    return None


def seed_effects(fn: FunctionDecl, aliases: Dict[str, str]) -> FrozenSet[str]:
    """The syntactic effect seeds of one function body."""
    modname = fn.modname
    rng_exempt = (
        config.module_matches(modname, config.RNG_ALLOWED_MODULES)
        or fn.qualname in config.RNG_SANCTIONED_FUNCTIONS
    )
    clock_exempt = config.module_matches(
        modname, config.WALL_CLOCK_ALLOWED_MODULES
    )
    banned_clocks = {f"{mod}.{attr}" for mod, attr in config.WALL_CLOCK_CALLS}
    seeds = set()
    for node in callgraph.iter_own_nodes(fn.node):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            seeds.add("STATE_MUTATION")
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for t in targets:
                if isinstance(t, (ast.Tuple, ast.List)):
                    elts: List[ast.expr] = list(t.elts)
                else:
                    elts = [t]
                for elt in elts:
                    chain = _store_root(elt)
                    if chain is not None and _self_rooted(chain):
                        seeds.add("STATE_MUTATION")
        elif isinstance(node, ast.Delete):
            for t in node.targets:
                chain = _store_root(t)
                if chain is not None and _self_rooted(chain):
                    seeds.add("STATE_MUTATION")
        elif isinstance(node, ast.Call):
            target = _call_target(node.func, aliases)
            tail = target.split(".")[-1] if target else None
            attr = (
                node.func.attr
                if isinstance(node.func, ast.Attribute)
                else None
            )
            if not rng_exempt:
                if tail in config.RNG_CONSTRUCTORS:
                    seeds.add("RNG")
                elif target is not None and target.startswith(
                    ("numpy.random.", "random.")
                ):
                    seeds.add("RNG")
                elif tail in config.RNG_DRAW_METHODS and attr is not None:
                    seeds.add("RNG")
            if not clock_exempt and target in banned_clocks:
                seeds.add("WALL_CLOCK")
            if attr in config.HOST_SYNC_METHODS:
                is_get = attr == "get"
                if not (is_get and (node.args or node.keywords)):
                    seeds.add("HOST_SYNC")
            if attr in config.DEVICE_TRANSFER_CALLS or (
                tail in config.DEVICE_TRANSFER_CALLS
            ):
                seeds.add("DEVICE_TRANSFER")
            if (
                attr in config.ASYNC_MUTATOR_METHODS
                and isinstance(node.func, ast.Attribute)
                and _self_rooted(node.func.value)
            ):
                seeds.add("STATE_MUTATION")
    return frozenset(seeds)


def fixpoint(
    seeds: Dict[str, FrozenSet[str]], calls: Dict[str, Tuple[str, ...]]
) -> Dict[str, FrozenSet[str]]:
    """Propagate callee effects to callers until stable.

    Monotone set union over a finite lattice: the result is the least
    fixpoint, reached in finitely many sweeps and identical for every
    iteration order (the sweeps stay sorted anyway, for reproducible
    intermediate states under debugging).
    """
    effects: Dict[str, FrozenSet[str]] = dict(seeds)
    changed = True
    while changed:
        changed = False
        for qualname in sorted(effects):
            merged = effects[qualname]
            for callee in calls.get(qualname, ()):
                callee_effects = effects.get(callee)
                if callee_effects:
                    merged = merged | callee_effects
            if merged != effects[qualname]:
                effects[qualname] = merged
                changed = True
    return effects


def build_project(
    modules: Iterable[Tuple[str, ast.Module, bool]]
) -> ProjectSummary:
    """Run pass 1 over ``(modname, tree, is_package)`` triples."""
    decls_list: List[ModuleDecls] = [
        callgraph.collect_module(tree, modname, is_package)
        for modname, tree, is_package in modules
    ]
    functions: Dict[str, FunctionDecl] = {}
    classes: Dict[str, Tuple[str, ...]] = {}
    for decls in decls_list:
        for fn in decls.functions:
            functions[fn.qualname] = fn
        for qualname, cls in decls.classes.items():
            classes[qualname] = cls.bases
    seeds: Dict[str, FrozenSet[str]] = {}
    calls: Dict[str, Tuple[str, ...]] = {}
    for decls in decls_list:
        for fn in decls.functions:
            seeds[fn.qualname] = seed_effects(fn, decls.aliases)
        calls.update(callgraph.call_edges(decls, functions, classes))
    return ProjectSummary(
        modules=frozenset(d.modname for d in decls_list),
        functions=fixpoint(seeds, calls),
        seeds=seeds,
        calls=calls,
        classes=classes,
    )


def effect_chain(
    summary: ProjectSummary, start: str, effect: str
) -> List[str]:
    """A deterministic witness chain from ``start`` down to a function
    that *seeds* ``effect`` (always the lexicographically least carrying
    callee at each hop; cycle-guarded)."""
    chain = [start]
    seen = {start}
    current = start
    while effect not in summary.seeds.get(current, _EMPTY):
        candidates = [
            callee
            for callee in summary.calls.get(current, ())
            if effect in summary.effects_of(callee) and callee not in seen
        ]
        if not candidates:
            break
        current = min(candidates)
        chain.append(current)
        seen.add(current)
    return chain


def render_chain(summary: ProjectSummary, start: str, effect: str) -> str:
    return " -> ".join(effect_chain(summary, start, effect))


def is_public_qualname(qualname: str) -> bool:
    """Public API surface: no ``_``-prefixed component anywhere (this
    also drops dunders like ``__init__`` and private helper modules)."""
    return all(not part.startswith("_") for part in qualname.split("."))


def effects_report(summary: ProjectSummary) -> str:
    """The ``--effects`` JSON: every public ``repro.*`` function with a
    non-empty effect set, effects in canonical lattice order.  Sorted
    keys + trailing newline make the output byte-stable run to run."""
    functions: Dict[str, List[str]] = {}
    for qualname, effect_set in summary.functions.items():
        if not effect_set:
            continue
        if not qualname.startswith("repro."):
            continue
        if not is_public_qualname(qualname):
            continue
        functions[qualname] = [e for e in EFFECTS if e in effect_set]
    return (
        json.dumps(
            {"version": EFFECTS_FORMAT_VERSION, "functions": functions},
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
