"""Allowlist and layering tables the rules consult.

Everything scoped or exempted lives here, in one reviewable place — a
rule module never hard-codes a module name.  Scopes and allowlists are
dotted-module *prefixes* (``"repro.gen"`` covers ``repro.gen.uunifast``);
an entry matches a module when it equals the module or is a proper
dotted prefix of it.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

#: The project's own namespace.  Rules that police *our* determinism
#: contracts (RL003/RL006 and their transitive closures RL010/RL012)
#: apply only to modules under this prefix — files outside any package
#: (``benchmarks/``, ``examples/``, ``scripts/`` get bare-stem module
#: names) are the sanctioned home for timing and ad-hoc RNG, exactly as
#: the RL006 docstring prescribes.
SRC_NAMESPACE: Tuple[str, ...] = ("repro",)

#: Modules (prefixes) that form the backend-pluggable kernel surface:
#: inside these, importing numpy directly would fork the array namespace
#: and silently break torch/cupy parity (RL001).
KERNEL_PACKAGES: Tuple[str, ...] = ("repro.vector",)

#: The sanctioned numpy touchpoints inside/beside the kernel surface:
#: ``repro.vector.xp`` is *the* resolver (its job is importing numpy);
#: ``repro.search.patterns`` is the documented numpy-only unit-cube ->
#: legal-pattern mapping shared with the scalar twins (kept off the
#: backend namespace deliberately, see its module docstring).
NUMPY_ALLOWED_MODULES: Tuple[str, ...] = (
    "repro.vector.xp",
    "repro.search.patterns",
)

#: Libraries that must never be imported at module top level anywhere
#: under ``src`` (RL002): both are optional accelerators resolved lazily
#: by ``repro.vector.xp``; a top-level import would make the whole tree
#: unimportable without them installed.
LAZY_ONLY_LIBRARIES: Tuple[str, ...] = ("torch", "cupy")

#: Modules (prefixes) allowed to construct RNGs or draw from global RNG
#: state (RL003): the seeded-sampler/generation layer.  Everything else
#: — vector kernels above all — must be deterministic in its inputs.
RNG_ALLOWED_MODULES: Tuple[str, ...] = (
    "repro.util.rngutil",     # the canonical seed -> Generator helpers
    "repro.gen",              # taskset generation (uunifast, randfixedsum, sweeps)
    "repro.fpga2d.gen2d",     # 2D-device taskset generation
    "repro.sim.offsets",      # release-offset pattern sampling
    "repro.sim.sporadic",     # sporadic inter-arrival sampling
    "repro.search",           # adaptive proposal machinery (host-side, seeded)
    "repro.vector.batch",     # host-side batch generation (draw order pinned)
)

#: Method names that read as RNG draws when called inside the strict
#: kernel modules (RL003's second tier — catches a generator object
#: smuggled into a kernel even without a construction site).
RNG_DRAW_METHODS: Tuple[str, ...] = (
    "random", "uniform", "normal", "standard_normal", "integers",
    "choice", "shuffle", "permutation", "exponential", "poisson",
)

#: Constructors that mint RNG state (RL003 and the effect seeder).
#: Matching is by trailing attribute so any numpy alias is caught
#: (``np.random.default_rng``, ``numpy.random.default_rng``, a bare
#: ``default_rng`` from-import).
RNG_CONSTRUCTORS: Tuple[str, ...] = ("default_rng", "RandomState", "SeedSequence")

#: Fully-qualified functions whose RNG draws are *sanctioned* — the
#: documented host-side seeded samplers living inside an otherwise
#: strict kernel module (draw order pinned to the scalar reference,
#: ROADMAP "Array backends").  The effect seeder does not mark them
#: ``RNG``, so RL010 does not flag their kernel-side callers; their
#: in-body draws carry per-line RL003 pragmas already.
RNG_SANCTIONED_FUNCTIONS: Tuple[str, ...] = (
    "repro.vector.sim_vec.sample_offsets_batch",
    "repro.vector.sim_vec.sample_release_times_batch",
)

#: Kernel modules held to the strict determinism tier of RL003 and the
#: host-sync ban of RL005: the fused pass loops of the batched
#: simulator and the placement kernels.
KERNEL_STRICT_MODULES: Tuple[str, ...] = (
    "repro.vector.sim_vec",
    "repro.vector.placement_vec",
    "repro.vector.dp_vec",
    "repro.vector.gn1_vec",
    "repro.vector.gn2_vec",
)

#: Modules where RL005 applies (host-device sync calls inside loops):
#: the two kernel modules with pass loops.  ``.get()`` is only flagged
#: zero-arg (cupy's device->host transfer); ``d.get(key)`` stays legal.
SYNC_SCOPED_MODULES: Tuple[str, ...] = (
    "repro.vector.sim_vec",
    "repro.vector.placement_vec",
)

#: Attribute paths whose *call* means "block on the device" (RL005).
HOST_SYNC_METHODS: Tuple[str, ...] = ("item", "cpu", "tolist", "get")

#: Method/function tails whose call moves data across the host-device
#: boundary (the ``DEVICE_TRANSFER`` effect in the report — informative,
#: no rule bans it; the contract is "once per batch each way").
DEVICE_TRANSFER_CALLS: Tuple[str, ...] = (
    "asnumpy", "from_numpy", "synchronize", "to_device",
)

#: ``module -> attribute`` pairs that read wall clocks (RL006).  The
#: repro tree must stay deterministic and profiler-friendly; timing
#: belongs in ``benchmarks/`` (outside ``src``) or behind
#: ``xp.synchronize()``-bracketed pytest-benchmark runs.
WALL_CLOCK_CALLS: Tuple[Tuple[str, str], ...] = (
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "process_time"),
    ("time", "process_time_ns"),
    ("timeit", "default_timer"),
)

#: Modules (prefixes) exempt from RL006.  Exactly one: the admission
#: service's clock shim.  The micro-batching window (a *latency* bound)
#: and request-latency percentiles are inherently wall-clock concerns —
#: a long-running server cannot be clock-free the way the analysis tree
#: is.  All service timing funnels through ``repro.service.clock.now``
#: so the exemption stays one module wide; timestamps never influence
#: *decisions* (the batch-parity contract and its randomized test suite
#: pin that), only when a batch flushes.
WALL_CLOCK_ALLOWED_MODULES: Tuple[str, ...] = ("repro.service.clock",)

#: Modules (prefixes) whose ``async def`` bodies are held to RL013's
#: await-atomicity discipline: the admission service, where shared
#: per-device engine state lives on the event loop and every await is a
#: point other coroutines may mutate it.
ASYNC_STATE_MODULES: Tuple[str, ...] = ("repro.service",)

#: Method names that count as *mutations* of the receiver for RL013
#: (and the ``STATE_MUTATION`` effect): the container/state mutators the
#: service's AdmissionState, pending lists, and registries go through.
#: Calling one of these on ``self``-rooted state does NOT count as a
#: re-validating read of that state.
ASYNC_MUTATOR_METHODS: Tuple[str, ...] = (
    "add", "admit", "append", "appendleft", "apply", "clear", "discard",
    "extend", "insert", "pop", "popleft", "remove", "setdefault", "update",
)

#: RL007 import layering.  A module may import only modules whose layer
#: is <= its own.  Matching is longest-dotted-prefix, with exact module
#: names taking precedence over package prefixes — that is how
#: ``repro.sim.offsets``/``repro.sim.sporadic`` (the scalar twins built
#: *on top of* ``repro.search``) and the ``repro.sim`` package
#: ``__init__`` that re-exports them sit above the rest of their
#: package.  Function-body imports are exempt (the sanctioned
#: cycle-breaker, same philosophy as RL002's lazy-only libraries).
LAYERS: Dict[str, int] = {
    "repro.util": 0,
    "repro.lint": 0,          # imports nothing from the rest of the tree
    "repro.model": 1,
    "repro.fpga": 2,
    "repro.gen": 2,
    "repro.core": 3,
    "repro.uni": 3,
    "repro.sched": 4,
    "repro.fpga2d": 4,
    "repro.mp": 4,
    "repro.sim": 5,
    "repro.vector": 6,
    "repro.search": 7,
    "repro.sim.offsets": 7,   # scalar twin of repro.search.drivers
    "repro.sim.sporadic": 7,  # scalar twin of repro.search.drivers
    "repro.sim.__init__": 7,  # re-exports the twins
    "repro.incremental": 8,
    "repro.experiments": 9,
    "repro.service": 9,       # admission service atop incremental + vector
    "repro.__init__": 9,      # the public facade re-exports from everywhere
}


def module_matches(modname: str, entries: Iterable[str]) -> bool:
    """True when ``modname`` equals or lives under any dotted prefix."""
    for entry in entries:
        if modname == entry or modname.startswith(entry + "."):
            return True
    return False


def layer_of(modname: str) -> Optional[int]:
    """RL007 layer for ``modname`` (longest dotted-prefix match).

    A package's ``__init__`` can be pinned separately from the package
    prefix via an explicit ``"pkg.__init__"`` entry.  Returns ``None``
    for modules outside the table (they are not layered).
    """
    if modname + ".__init__" in LAYERS:
        # Exact __init__ pin: only when modname names the package itself.
        return LAYERS[modname + ".__init__"]
    parts = modname.split(".")
    for i in range(len(parts), 0, -1):
        prefix = ".".join(parts[:i])
        if prefix in LAYERS:
            return LAYERS[prefix]
    return None
