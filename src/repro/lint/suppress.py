"""``# repro-lint:`` suppression pragmas.

Three forms, parsed from raw source lines (comments never reach the
AST):

* same-line — ``x = thing()  # repro-lint: disable=RL004 -- why``
  suppresses matching findings reported *on that line*;
* standalone — a comment-only line suppresses the next source line
  (for statements too long to carry a trailing comment);
* file-level — ``# repro-lint: disable-file=RL001 -- why`` anywhere in
  the file suppresses the rule for the whole file.

Several IDs may share one pragma (``disable=RL004,RL005``).  The
``-- reason`` is optional but conventional; reviews should expect one.

Every ``(pragma, rule-id)`` entry must suppress at least one finding or
it is itself reported as RL008 (unused suppression) at the pragma's
line — exemptions cannot outlive the code they excuse.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.lint.findings import Finding

PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable|disable-file)\s*=\s*"
    r"(?P<ids>RL\d{3}(?:\s*,\s*RL\d{3})*)"
    r"(?:\s+--\s+(?P<reason>.*\S))?\s*$"
)

#: The unused-suppression meta-rule's ID.  It cannot itself be
#: suppressed — a pragma for RL008 is just another unused pragma.
UNUSED_SUPPRESSION_ID = "RL008"


@dataclass
class Suppression:
    """One ``(pragma line, rule id)`` suppression entry."""

    rule: str
    pragma_line: int          # line the comment sits on (1-based)
    file_level: bool
    reason: Optional[str]
    #: line whose findings this entry suppresses (ignored if file_level)
    target_line: int = 0
    used: bool = field(default=False, compare=False)

    def matches(self, finding: Finding) -> bool:
        if finding.rule != self.rule:
            return False
        return self.file_level or finding.line == self.target_line


def collect_suppressions(source: str) -> List[Suppression]:
    """Parse every pragma comment in ``source``.

    Real ``COMMENT`` tokens only — pragma-shaped text inside a docstring
    or string literal (this module's own documentation, say) is not a
    pragma.
    """
    out: List[Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return out  # the engine already reported a parse error
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        m = PRAGMA_RE.search(tok.string)
        if m is None:
            continue
        lineno, col = tok.start
        file_level = m.group("kind") == "disable-file"
        # A comment-only line targets the next line; a trailing comment
        # targets its own line.
        standalone = tok.line[:col].strip() == ""
        target = lineno + 1 if standalone else lineno
        reason = m.group("reason")
        for rule_id in re.split(r"\s*,\s*", m.group("ids")):
            out.append(
                Suppression(
                    rule=rule_id,
                    pragma_line=lineno,
                    file_level=file_level,
                    reason=reason,
                    target_line=target,
                )
            )
    return out


def apply_suppressions(
    findings: List[Finding],
    suppressions: List[Suppression],
    path: str,
    *,
    checked_rules: Optional[Set[str]] = None,
    report_unused: bool = True,
) -> List[Finding]:
    """Drop suppressed findings; append RL008 for unused pragma entries.

    Returns the reportable findings (sorted).  ``findings`` must all
    belong to ``path``.  A pragma whose rule was not *run* this
    invocation (not in ``checked_rules``, e.g. deselected via
    ``--select``) cannot be proven unused and is never flagged; pass
    ``report_unused=False`` to disable RL008 entirely (RL008 itself
    deselected).
    """
    kept: List[Finding] = []
    for f in findings:
        suppressed = False
        for s in suppressions:
            if s.matches(f):
                s.used = True
                suppressed = True
                # Keep scanning: duplicate pragmas for the same rule/line
                # should all count as used rather than flag each other.
        if not suppressed:
            kept.append(f)
    if not report_unused:
        return sorted(kept)
    for s in suppressions:
        if checked_rules is not None and s.rule not in checked_rules:
            continue
        if not s.used:
            scope = "file-level " if s.file_level else ""
            kept.append(
                Finding(
                    path=path,
                    line=s.pragma_line,
                    col=0,
                    rule=UNUSED_SUPPRESSION_ID,
                    message=(
                        f"unused {scope}suppression of {s.rule}: no {s.rule} "
                        f"finding matches this pragma; remove it"
                    ),
                )
            )
    return sorted(kept)
