"""Await-atomicity dataflow over ``async def`` bodies (RL013's engine).

The hazard: on one event loop, code between two awaits runs atomically,
but *across* an await every other coroutine may have run.  State that
was read ("validated") before an await and then **mutated** after it —
without being re-read or guarded by a rollback handler — is the classic
check-then-act race the service's ordered-confirmation design exists to
prevent.

The analysis is a statement-level abstract interpretation per ``async
def``.  It tracks dotted attribute paths rooted at ``self``/``cls``
(``self._started``, ``self.state.resident``, …) through three states:

``UNSEEN``
    never read in this function — a blind write after an await is not a
    TOCTOU (nothing was validated, so nothing went stale);
``CLEAN``
    read (or written) since the last await — validated in the current
    atomic region;
``STALE``
    read before an await that has since run — the observed value may no
    longer hold.

Transfer rules, in evaluation order within each statement: a read sets
the path *and every prefix* to CLEAN; an ``await`` (including the
implicit awaits of ``async for`` / ``async with``) flips every CLEAN
path to STALE; a mutation — an assign/augassign/del store through the
path, or a ``config.ASYNC_MUTATOR_METHODS`` call on it — is a
:class:`Hazard` when the path is STALE, and leaves the path CLEAN.
Crucially, a mutator call's receiver does **not** count as a read:
``self.state.add(task)`` cannot validate the very state it mutates.

Branches are analyzed independently and joined pessimistically (STALE
wins; branches that terminate — return/raise/break/continue — drop out
of the join).  Loop bodies run twice so loop-carried staleness (an
await at the bottom of the body staling reads at the top) is observed.
``except`` and ``finally`` bodies are exempt from reporting: mutating
state there is the sanctioned rollback idiom.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint import config

UNSEEN = 0
CLEAN = 1
STALE = 2

#: path -> (state, line of the await that staled it; 0 unless STALE)
Env = Dict[str, Tuple[int, int]]

_DEFERRED = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


@dataclass(frozen=True)
class Hazard:
    """One await-straddling mutation."""

    line: int
    col: int
    path: str
    await_line: int


def attribute_path(node: ast.AST) -> Optional[str]:
    """``self.a.b`` as a dotted string for a pure attribute chain rooted
    at ``self``/``cls``; None for anything else (subscripts, calls)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and node.id in ("self", "cls") and parts:
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _Analyzer:
    def __init__(self) -> None:
        self.hazards: List[Hazard] = []
        self._seen: Set[Tuple[int, int, str]] = set()

    # -- env operations --------------------------------------------------------

    @staticmethod
    def _read(env: Env, path: str) -> None:
        parts = path.split(".")
        for i in range(2, len(parts) + 1):
            env[".".join(parts[:i])] = (CLEAN, 0)

    @staticmethod
    def _await(env: Env, line: int) -> None:
        for path, (state, _) in list(env.items()):
            if state == CLEAN:
                env[path] = (STALE, line)

    def _mutate(self, env: Env, path: str, node: ast.AST,
                report: bool) -> None:
        state, await_line = env.get(path, (UNSEEN, 0))
        if state == STALE and report:
            key = (node.lineno, node.col_offset, path)
            if key not in self._seen:
                self._seen.add(key)
                self.hazards.append(
                    Hazard(
                        line=node.lineno,
                        col=node.col_offset,
                        path=path,
                        await_line=await_line,
                    )
                )
        env[path] = (CLEAN, 0)

    @staticmethod
    def _join(envs: List[Env]) -> Env:
        if not envs:
            return {}
        out: Env = {}
        keys = set()
        for env in envs:
            keys.update(env)
        for path in keys:
            state, line = UNSEEN, 0
            for env in envs:
                s, ln = env.get(path, (UNSEEN, 0))
                if s > state:
                    state, line = s, ln
                elif s == state == STALE and 0 < ln < (line or ln + 1):
                    line = ln
            out[path] = (state, line)
        return out

    # -- expression events -----------------------------------------------------

    def _expr(self, node: ast.AST, env: Env, report: bool) -> None:
        """Apply reads/awaits/mutator-calls of one expression in
        evaluation order (approximated by AST order)."""
        if isinstance(node, _DEFERRED):
            return  # runs later, in its own atomic regions
        if isinstance(node, ast.Await):
            self._expr(node.value, env, report)
            self._await(env, node.lineno)
            return
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                receiver = attribute_path(func.value)
                if (
                    receiver is not None
                    and func.attr in config.ASYNC_MUTATOR_METHODS
                ):
                    for arg in node.args:
                        self._expr(arg, env, report)
                    for kw in node.keywords:
                        self._expr(kw.value, env, report)
                    self._mutate(env, receiver, node, report)
                    return
            self._expr(func, env, report)
            for arg in node.args:
                self._expr(arg, env, report)
            for kw in node.keywords:
                self._expr(kw.value, env, report)
            return
        if isinstance(node, ast.Attribute):
            path = attribute_path(node)
            if path is not None:
                self._read(env, path)
                return
            self._expr(node.value, env, report)
            return
        for child in ast.iter_child_nodes(node):
            self._expr(child, env, report)

    # -- store targets ---------------------------------------------------------

    def _store(self, target: ast.AST, env: Env, report: bool) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._store(elt, env, report)
            return
        if isinstance(target, ast.Starred):
            self._store(target.value, env, report)
            return
        if isinstance(target, ast.Attribute):
            path = attribute_path(target)
            if path is not None:
                self._mutate(env, path, target, report)
            else:
                self._expr(target.value, env, report)
            return
        if isinstance(target, ast.Subscript):
            # self.a[i] = x mutates the container self.a
            path = attribute_path(target.value)
            self._expr(target.slice, env, report)
            if path is not None:
                self._mutate(env, path, target, report)
            else:
                self._expr(target.value, env, report)

    # -- statements ------------------------------------------------------------

    def _stmts(self, body: Sequence[ast.stmt], env: Env,
               report: bool) -> bool:
        """Analyze a statement list in ``env``; True if flow terminates
        (return/raise/break/continue on every path)."""
        for stmt in body:
            if isinstance(stmt, (ast.Return, ast.Raise)):
                if isinstance(stmt, ast.Return) and stmt.value is not None:
                    self._expr(stmt.value, env, report)
                if isinstance(stmt, ast.Raise):
                    if stmt.exc is not None:
                        self._expr(stmt.exc, env, report)
                    if stmt.cause is not None:
                        self._expr(stmt.cause, env, report)
                return True
            if isinstance(stmt, (ast.Break, ast.Continue)):
                return True
            if isinstance(stmt, ast.Expr):
                self._expr(stmt.value, env, report)
            elif isinstance(stmt, ast.Assign):
                self._expr(stmt.value, env, report)
                for target in stmt.targets:
                    self._store(target, env, report)
            elif isinstance(stmt, ast.AugAssign):
                # load target, evaluate value, store target — the
                # read-modify-write is atomic unless the value awaits.
                path = (
                    attribute_path(stmt.target)
                    if isinstance(stmt.target, ast.Attribute)
                    else None
                )
                if path is not None:
                    self._read(env, path)
                self._expr(stmt.value, env, report)
                self._store(stmt.target, env, report)
            elif isinstance(stmt, ast.AnnAssign):
                if stmt.value is not None:
                    self._expr(stmt.value, env, report)
                    self._store(stmt.target, env, report)
            elif isinstance(stmt, ast.Delete):
                for target in stmt.targets:
                    self._store(target, env, report)
            elif isinstance(stmt, ast.If):
                self._expr(stmt.test, env, report)
                then_env, else_env = dict(env), dict(env)
                then_done = self._stmts(stmt.body, then_env, report)
                else_done = self._stmts(stmt.orelse, else_env, report)
                live = [
                    e
                    for e, done in ((then_env, then_done), (else_env, else_done))
                    if not done
                ]
                if not live:
                    return True
                env.clear()
                env.update(self._join(live))
            elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
                if isinstance(stmt, ast.While):
                    self._expr(stmt.test, env, report)
                else:
                    self._expr(stmt.iter, env, report)
                # Two passes: the second runs from the joined state so an
                # await at the bottom of the body stales reads at the top.
                once = dict(env)
                if isinstance(stmt, ast.AsyncFor):
                    self._await(once, stmt.lineno)
                if not isinstance(stmt, ast.While):
                    self._store(stmt.target, once, report)
                self._stmts(stmt.body, once, report)
                twice = self._join([env, once])
                if isinstance(stmt, ast.AsyncFor):
                    self._await(twice, stmt.lineno)
                self._stmts(stmt.body, twice, report)
                joined = self._join([env, once, twice])
                env.clear()
                env.update(joined)
                self._stmts(stmt.orelse, env, report)
            elif isinstance(stmt, ast.Try):
                pre = dict(env)
                body_done = self._stmts(stmt.body, env, report)
                outs = [] if body_done else [env]
                for handler in stmt.handlers:
                    # Rollback region: runs from an unknowable point
                    # between pre and post; mutations are sanctioned.
                    h_env = self._join([pre, env])
                    self._stmts(handler.body, h_env, report=False)
                    outs.append(h_env)
                if not body_done:
                    self._stmts(stmt.orelse, env, report)
                joined = self._join(outs) if outs else dict(env)
                env.clear()
                env.update(joined)
                self._stmts(stmt.finalbody, env, report=False)
                if body_done and not stmt.finalbody and not stmt.handlers:
                    return True
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self._expr(item.context_expr, env, report)
                if isinstance(stmt, ast.AsyncWith):
                    self._await(env, stmt.lineno)
                if self._stmts(stmt.body, env, report):
                    return True
            elif isinstance(stmt, (ast.Global, ast.Nonlocal, ast.Pass,
                                   ast.Import, ast.ImportFrom)):
                pass
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                pass  # nested scope: analyzed (or not) on its own
            elif isinstance(stmt, ast.Assert):
                self._expr(stmt.test, env, report)
                if stmt.msg is not None:
                    self._expr(stmt.msg, env, report)
            else:
                self._expr(stmt, env, report)
        return False


def analyze_async_def(fn: ast.AsyncFunctionDef) -> List[Hazard]:
    """All await-straddling mutation hazards in one ``async def`` body,
    sorted by location (deterministic regardless of branch order)."""
    analyzer = _Analyzer()
    analyzer._stmts(fn.body, {}, report=True)
    return sorted(
        analyzer.hazards, key=lambda h: (h.line, h.col, h.path)
    )
