"""The unit of lint output: one finding, pinned to a rule and a line."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Orderable so reports are stable: by path, then line/col, then rule.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    #: suppression pragmas matched against this finding before reporting;
    #: a suppressed finding is dropped from the report but still counts
    #: as "using" its pragma (RL008 unused-suppression bookkeeping).
    suppressed: bool = field(default=False, compare=False)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def render(self) -> str:
        """The one-line text-reporter form: ``path:line:col: RLxxx message``."""
        return f"{self.location()}: {self.rule} {self.message}"

    def to_json(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }

    @classmethod
    def from_json(cls, obj: Dict[str, Any]) -> "Finding":
        return cls(
            path=str(obj["path"]),
            line=int(obj["line"]),
            col=int(obj["col"]),
            rule=str(obj["rule"]),
            message=str(obj["message"]),
        )
