"""``python -m repro.lint`` / ``repro-lint`` command line.

Exit codes: 0 clean, 1 findings, 2 usage or I/O error — so CI can gate
on the process status alone while archiving the machine-readable
report (``--output lint-report.json``).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.lint.effects import effects_report
from repro.lint.engine import build_project_for, lint_paths
from repro.lint.reporters import render_json, text_report
from repro.lint.rules import RULES, all_rule_ids

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def _rule_catalogue() -> str:
    lines = []
    for rule_id in sorted(RULES):
        cls = RULES[rule_id]
        lines.append(f"{rule_id}  {cls.name}")
        lines.append(f"       {cls.summary}")
    lines.append("RL008  unused-suppression")
    lines.append("       a disable pragma that no finding matches (meta-rule)")
    lines.append("RL009  parse-error")
    lines.append("       a file the parser rejects cannot be checked")
    return "\n".join(lines)


def _parse_ids(value: str) -> List[str]:
    return [v.strip() for v in value.split(",") if v.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based invariant linter for the repo's kernel-purity, "
            "backend, and determinism contracts."
        ),
        epilog=(
            "suppress a deliberate exception in-source with "
            "'# repro-lint: disable=RLxxx -- reason' (same line or the "
            "line above) or '# repro-lint: disable-file=RLxxx -- reason'; "
            "unused pragmas are themselves findings (RL008)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="stdout format (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="also write the JSON report to FILE (any --format)",
    )
    parser.add_argument(
        "--select",
        type=_parse_ids,
        metavar="RLxxx[,RLxxx...]",
        help="run only these rules",
    )
    parser.add_argument(
        "--ignore",
        type=_parse_ids,
        metavar="RLxxx[,RLxxx...]",
        help="skip these rules",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        help=(
            "lint files with N worker processes (default: "
            "$REPRO_LINT_JOBS, else serial); the report is identical "
            "for any N"
        ),
    )
    parser.add_argument(
        "--effects",
        action="store_true",
        help=(
            "instead of linting, print the inferred effect summary "
            "(JSON) for every public repro.* function and exit 0"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _emit(text: str) -> None:
    # A closed stdout (``repro-lint ... | head``) is not a lint failure;
    # repoint stdout at devnull so the interpreter's shutdown flush does
    # not raise a second BrokenPipeError.
    try:
        sys.stdout.write(text)
        sys.stdout.flush()
    except BrokenPipeError:
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        _emit(_rule_catalogue() + "\n")
        return EXIT_CLEAN
    if args.effects:
        try:
            summary, _ = build_project_for(args.paths)
            report = effects_report(summary)
        except (FileNotFoundError, ValueError, OSError) as exc:
            print(f"repro-lint: error: {exc}", file=sys.stderr)
            return EXIT_ERROR
        _emit(report)
        if args.output:
            try:
                with open(args.output, "w", encoding="utf-8") as fh:
                    fh.write(report)
            except OSError as exc:
                print(f"repro-lint: error: {exc}", file=sys.stderr)
                return EXIT_ERROR
        return EXIT_CLEAN
    try:
        result = lint_paths(
            args.paths,
            select=args.select,
            ignore=args.ignore,
            jobs=args.jobs,
        )
    except (FileNotFoundError, ValueError, OSError) as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    if args.format == "json":
        _emit(render_json(result))
    else:
        _emit(text_report(result) + "\n")
    if args.output:
        try:
            with open(args.output, "w", encoding="utf-8") as fh:
                fh.write(render_json(result))
        except OSError as exc:
            print(f"repro-lint: error: {exc}", file=sys.stderr)
            return EXIT_ERROR
    return EXIT_CLEAN if result.clean else EXIT_FINDINGS


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
