"""Lint engine: file discovery, module naming, rule dispatch.

Module names are derived from the filesystem (walking up the
``__init__.py`` chain), so ``python -m repro.lint src`` scopes every
rule correctly no matter the working directory.  Tests that lint
fixture snippets *as if* they lived at a given dotted path use
:func:`lint_source` with an explicit ``modname``.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Set

from repro.lint.findings import Finding
from repro.lint.rules import RULES, ModuleContext
from repro.lint.suppress import apply_suppressions, collect_suppressions

#: Pseudo-rule for files the parser rejects: an unparsable file cannot
#: be checked, which is itself a finding (and never suppressible —
#: pragmas live in source we could not read structurally).
PARSE_ERROR_ID = "RL009"


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def counts_by_rule(self) -> dict:
        out: dict = {}
        for f in self.findings:
            out[f.rule] = out.get(f.rule, 0) + 1
        return dict(sorted(out.items()))

    def extend(self, other: "LintResult") -> None:
        self.findings.extend(other.findings)
        self.files_checked += other.files_checked


def module_name_for(path: str) -> str:
    """Dotted module name by walking up the ``__init__.py`` chain.

    ``src/repro/vector/xp.py`` -> ``repro.vector.xp``;
    ``src/repro/sim/__init__.py`` -> ``repro.sim``.  A file outside any
    package keeps its bare stem (scoped rules then simply never match).
    """
    path = os.path.abspath(path)
    stem = os.path.splitext(os.path.basename(path))[0]
    parts = [] if stem == "__init__" else [stem]
    d = os.path.dirname(path)
    while os.path.isfile(os.path.join(d, "__init__.py")):
        parts.insert(0, os.path.basename(d))
        parent = os.path.dirname(d)
        if parent == d:
            break
        d = parent
    return ".".join(parts) or stem


def _selected_rules(
    select: Optional[Iterable[str]], ignore: Optional[Iterable[str]]
) -> List[str]:
    ids: Set[str] = set(select) if select else set(RULES)
    unknown = ids - set(RULES)
    if unknown:
        raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    if ignore:
        ids -= set(ignore)
    return sorted(ids)


def lint_source(
    source: str,
    modname: str,
    path: str = "<string>",
    *,
    is_package: bool = False,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> LintResult:
    """Lint one source blob under an explicit module identity."""
    result = LintResult(files_checked=1)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        result.findings.append(
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule=PARSE_ERROR_ID,
                message=f"syntax error: {exc.msg}",
            )
        )
        return result
    lines = source.splitlines()
    ctx = ModuleContext(
        path=path,
        modname=modname,
        tree=tree,
        source_lines=lines,
        is_package=is_package,
    )
    raw: List[Finding] = []
    for rule_id in _selected_rules(select, ignore):
        raw.extend(RULES[rule_id]().check(ctx))
    result.findings = apply_suppressions(raw, collect_suppressions(source), path)
    return result


def lint_file(
    path: str,
    modname: Optional[str] = None,
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> LintResult:
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    if modname is None:
        modname = module_name_for(path)
    return lint_source(
        source,
        modname,
        path=path,
        is_package=os.path.basename(path) == "__init__.py",
        select=select,
        ignore=ignore,
    )


def discover_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    for p in paths:
        if os.path.isdir(p):
            for root, dirs, files in os.walk(p):
                dirs[:] = sorted(
                    d for d in dirs if d not in ("__pycache__", ".git")
                )
                out.extend(
                    os.path.join(root, f)
                    for f in sorted(files)
                    if f.endswith(".py")
                )
        elif p.endswith(".py"):
            out.append(p)
        else:
            raise FileNotFoundError(f"not a .py file or directory: {p}")
    return out


def lint_paths(
    paths: Sequence[str],
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> LintResult:
    """Lint every ``.py`` file under ``paths``; findings sorted."""
    rule_ids = _selected_rules(select, ignore)  # validate up front
    result = LintResult()
    for path in discover_files(paths):
        result.extend(lint_file(path, select=rule_ids))
    result.findings.sort()
    return result
