"""Lint engine: file discovery, module naming, two-pass rule dispatch.

Module names are derived from the filesystem (walking up the
``__init__.py`` chain), so ``python -m repro.lint src`` scopes every
rule correctly no matter the working directory.  Tests that lint
fixture snippets *as if* they lived at a given dotted path use
:func:`lint_source` with an explicit ``modname``.

Since the transitive rules landed the engine runs two passes over a
tree: pass 1 parses every file once and builds the whole-program
:class:`~repro.lint.effects.ProjectSummary` (declarations, call edges,
effect fixpoint — see :mod:`repro.lint.callgraph` /
:mod:`repro.lint.effects`); pass 2 lints each file against that
summary.  Pass 2 is embarrassingly parallel and fans out over
:func:`repro.util.parallel.parallel_map` when ``jobs > 1`` (kwarg >
``REPRO_LINT_JOBS`` > serial) — the summary is AST-free and picklable,
per-file results merge in discovery order, and the final findings sort
makes the report identical for any worker count.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from functools import partial
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint import effects
from repro.lint.effects import ProjectSummary
from repro.lint.findings import Finding
from repro.lint.rules import RULES, ModuleContext, all_rule_ids
from repro.lint.suppress import (
    UNUSED_SUPPRESSION_ID,
    apply_suppressions,
    collect_suppressions,
)
from repro.util.parallel import parallel_map

#: Pseudo-rule for files the parser rejects: an unparsable file cannot
#: be checked, which is itself a finding (and never suppressible —
#: pragmas live in source we could not read structurally).
PARSE_ERROR_ID = "RL009"


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def counts_by_rule(self) -> dict:
        out: dict = {}
        for f in self.findings:
            out[f.rule] = out.get(f.rule, 0) + 1
        return dict(sorted(out.items()))

    def extend(self, other: "LintResult") -> None:
        self.findings.extend(other.findings)
        self.files_checked += other.files_checked


def module_name_for(path: str) -> str:
    """Dotted module name by walking up the ``__init__.py`` chain.

    ``src/repro/vector/xp.py`` -> ``repro.vector.xp``;
    ``src/repro/sim/__init__.py`` -> ``repro.sim``.  A file outside any
    package keeps its bare stem (scoped rules then simply never match).
    """
    path = os.path.abspath(path)
    stem = os.path.splitext(os.path.basename(path))[0]
    parts = [] if stem == "__init__" else [stem]
    d = os.path.dirname(path)
    while os.path.isfile(os.path.join(d, "__init__.py")):
        parts.insert(0, os.path.basename(d))
        parent = os.path.dirname(d)
        if parent == d:
            break
        d = parent
    return ".".join(parts) or stem


def _selected_rules(
    select: Optional[Iterable[str]], ignore: Optional[Iterable[str]]
) -> Tuple[List[str], Set[str]]:
    """Validate and resolve a selection.

    Both ``select`` and ``ignore`` must name known rule IDs (including
    the RL008/RL009 meta-rules) — an unknown ID in either is a
    :class:`ValueError`, not a silent no-op.  Returns ``(run_ids,
    active)``: the registered rules to execute, and the full active ID
    set (meta-rules included) the engine gates its own reporting on.
    """
    known = set(all_rule_ids())
    active: Set[str] = set(select) if select else set(known)
    unknown = active - known
    if unknown:
        raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    if ignore:
        ignored = set(ignore)
        unknown = ignored - known
        if unknown:
            raise ValueError(
                f"unknown rule id(s): {', '.join(sorted(unknown))}"
            )
        active -= ignored
    return sorted(active & set(RULES)), active


def _single_module_project(
    tree: ast.Module, modname: str, is_package: bool
) -> ProjectSummary:
    return effects.build_project([(modname, tree, is_package)])


def lint_source(
    source: str,
    modname: str,
    path: str = "<string>",
    *,
    is_package: bool = False,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    project: Optional[ProjectSummary] = None,
) -> LintResult:
    """Lint one source blob under an explicit module identity.

    Without an explicit ``project`` the blob is its own whole program
    (a single-module summary is built from it), so fixture snippets
    exercise the transitive rules self-contained.
    """
    run_ids, active = _selected_rules(select, ignore)
    result = LintResult(files_checked=1)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        if PARSE_ERROR_ID in active:
            result.findings.append(
                Finding(
                    path=path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    rule=PARSE_ERROR_ID,
                    message=f"syntax error: {exc.msg}",
                )
            )
        return result
    if project is None:
        project = _single_module_project(tree, modname, is_package)
    lines = source.splitlines()
    ctx = ModuleContext(
        path=path,
        modname=modname,
        tree=tree,
        source_lines=lines,
        is_package=is_package,
        project=project,
    )
    raw: List[Finding] = []
    for rule_id in run_ids:
        raw.extend(RULES[rule_id]().check(ctx))
    result.findings = apply_suppressions(
        raw,
        collect_suppressions(source),
        path,
        checked_rules=set(run_ids),
        report_unused=UNUSED_SUPPRESSION_ID in active,
    )
    return result


def lint_file(
    path: str,
    modname: Optional[str] = None,
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    project: Optional[ProjectSummary] = None,
) -> LintResult:
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    if modname is None:
        modname = module_name_for(path)
    return lint_source(
        source,
        modname,
        path=path,
        is_package=os.path.basename(path) == "__init__.py",
        select=select,
        ignore=ignore,
        project=project,
    )


def discover_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    for p in paths:
        if os.path.isdir(p):
            for root, dirs, files in os.walk(p):
                dirs[:] = sorted(
                    d for d in dirs if d not in ("__pycache__", ".git")
                )
                out.extend(
                    os.path.join(root, f)
                    for f in sorted(files)
                    if f.endswith(".py")
                )
        elif p.endswith(".py"):
            out.append(p)
        else:
            raise FileNotFoundError(f"not a .py file or directory: {p}")
    return out


def build_project_for(paths: Sequence[str]) -> Tuple[ProjectSummary, int]:
    """Pass 1 over ``paths``: parse every discovered file and build the
    whole-program summary.  Unparsable files are skipped here (pass 2
    reports them as RL009).  Returns ``(summary, files_discovered)``.
    """
    modules: List[Tuple[str, ast.Module, bool]] = []
    files = discover_files(paths)
    for path in files:
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            continue
        modules.append(
            (
                module_name_for(path),
                tree,
                os.path.basename(path) == "__init__.py",
            )
        )
    return effects.build_project(modules), len(files)


def resolve_lint_jobs(jobs: Optional[int] = None) -> int:
    """Worker-count precedence: explicit ``jobs`` > ``REPRO_LINT_JOBS``
    > serial (1)."""
    if jobs is None:
        env = os.environ.get("REPRO_LINT_JOBS", "").strip()
        if not env:
            return 1
        try:
            jobs = int(env)
        except ValueError:
            raise ValueError(
                f"REPRO_LINT_JOBS must be an integer, got {env!r}"
            ) from None
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def _lint_one(
    path: str, select: Tuple[str, ...], project: ProjectSummary
) -> LintResult:
    """One pass-2 unit of work (module-level: picklable for the pool)."""
    return lint_file(path, select=list(select), project=project)


def lint_paths(
    paths: Sequence[str],
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    jobs: Optional[int] = None,
) -> LintResult:
    """Lint every ``.py`` file under ``paths``; findings sorted.

    ``jobs > 1`` fans pass 2 out over a process pool; results are
    merged in discovery order and sorted, so the report is identical
    for every worker count.
    """
    _, active = _selected_rules(select, ignore)  # validate up front
    workers = resolve_lint_jobs(jobs)
    project, _ = build_project_for(paths)
    files = discover_files(paths)
    job = partial(_lint_one, select=tuple(sorted(active)), project=project)
    result = LintResult()
    for file_result in parallel_map(job, files, workers=workers):
        result.extend(file_result)
    result.findings.sort()
    return result
