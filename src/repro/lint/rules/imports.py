"""Import-shape rules: RL001 (kernel numpy purity), RL002 (lazy-only
torch/cupy), RL007 (package layering)."""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint import config
from repro.lint.findings import Finding
from repro.lint.rules import (
    ModuleContext,
    Rule,
    imported_module_targets,
    module_scope_imports,
    register,
)


@register
class KernelNumpyImport(Rule):
    """RL001 — the backend-pluggable kernels must not import numpy.

    Every kernel in ``repro.vector`` computes through the
    ``repro.vector.xp`` namespace; a direct numpy import (top-level *or*
    function-body — there is no lazy escape hatch here) forks the array
    namespace and breaks torch/cupy parity.  ``repro.vector.xp`` itself
    is the one sanctioned resolver; host-side numpy access goes through
    ``repro.vector.xp.host``.
    """

    id = "RL001"
    name = "kernel-numpy-import"
    summary = (
        "no direct numpy import inside repro.vector kernels "
        "(use the repro.vector.xp namespace; xp.host for host-side numpy)"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not config.module_matches(ctx.modname, config.KERNEL_PACKAGES):
            return
        if config.module_matches(ctx.modname, config.NUMPY_ALLOWED_MODULES):
            return
        for node in ast.walk(ctx.tree):
            targets = []
            if isinstance(node, ast.Import):
                targets = [a.name for a in node.names]
            elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
                targets = [node.module]
            for t in targets:
                if t == "numpy" or t.startswith("numpy."):
                    yield self.finding(
                        ctx,
                        node,
                        f"direct numpy import ({t!r}) in kernel module "
                        f"{ctx.modname}; kernels compute through "
                        f"repro.vector.xp (host-side numpy via xp.host)",
                    )


@register
class EagerAcceleratorImport(Rule):
    """RL002 — torch/cupy are optional and must import lazily.

    A module-top-level ``import torch``/``import cupy`` anywhere under
    ``src`` makes the tree unimportable without the accelerator
    installed.  Only ``repro.vector.xp`` resolves them, inside the
    backend factory functions; ``if TYPE_CHECKING:`` blocks are exempt
    (they never execute).
    """

    id = "RL002"
    name = "eager-accelerator-import"
    summary = (
        "no module-top-level torch/cupy import anywhere under src "
        "(lazy function-body imports only)"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node, guarded in module_scope_imports(ctx.tree):
            if guarded:
                continue
            targets = []
            if isinstance(node, ast.Import):
                targets = [a.name for a in node.names]
            elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
                targets = [node.module]
            for t in targets:
                root = t.split(".")[0]
                if root in config.LAZY_ONLY_LIBRARIES:
                    yield self.finding(
                        ctx,
                        node,
                        f"module-top-level import of optional accelerator "
                        f"{root!r}; it must resolve lazily inside a function "
                        f"body (see repro.vector.xp)",
                    )


@register
class ImportLayering(Rule):
    """RL007 — the ``repro.*`` packages import downward only.

    The layer table lives in :mod:`repro.lint.config` (``LAYERS``);
    a module may import modules at its own layer or below.  In
    particular ``repro.vector``/``repro.core`` must never import
    ``repro.experiments``, and ``repro.model`` imports nothing above
    it.  Only import-time (module/class scope) imports are layered —
    a function-body import is the sanctioned cycle-breaker.
    """

    id = "RL007"
    name = "import-layering"
    summary = (
        "repro.* packages import downward only (layer table in "
        "repro.lint.config.LAYERS); function-body imports exempt"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        my_layer = config.layer_of(ctx.modname)
        if my_layer is None:
            return
        for node, guarded in module_scope_imports(ctx.tree):
            if guarded:
                continue
            for target in imported_module_targets(node, ctx):
                if not (target == "repro" or target.startswith("repro.")):
                    continue
                t_layer = config.layer_of(target)
                if t_layer is not None and t_layer > my_layer:
                    yield self.finding(
                        ctx,
                        node,
                        f"{ctx.modname} (layer {my_layer}) imports {target} "
                        f"(layer {t_layer}) at module scope; higher-layer "
                        f"imports must move into a function body or the "
                        f"dependency must be inverted",
                    )
                    break  # one finding per import statement
