"""Determinism rules: RL003 (seeded-sampling discipline) and RL006
(no wall clocks in the analysis tree)."""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint import config
from repro.lint.findings import Finding
from repro.lint.rules import (
    ModuleContext,
    Rule,
    dotted_name,
    import_aliases,
    register,
    resolve_call_target,
)

@register
class RngOutsideSamplers(Rule):
    """RL003 — RNG construction/draws only in the sampler/generation layer.

    All randomness flows from seeds through
    ``repro.util.rngutil``-minted generators held by the samplers and
    generation modules (host-side, draw order pinned to the scalar
    reference).  Anywhere else — the vector kernels above all — code
    must be a deterministic function of its inputs: no ``default_rng``/
    ``RandomState``/``SeedSequence`` construction, no ``np.random.*``
    module-state draws, no stdlib ``random``.  Inside the strict kernel
    modules, draw-shaped method calls (``.uniform(...)``,
    ``.integers(...)`` …) are flagged too, so a generator object passed
    *into* a kernel cannot smuggle draws past the construction check.
    """

    id = "RL003"
    name = "rng-outside-samplers"
    summary = (
        "no RNG construction or global-state draws outside the "
        "allowlisted sampler/generation modules; strict kernels also "
        "reject draw-method calls"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not config.module_matches(ctx.modname, config.SRC_NAMESPACE):
            return  # benchmarks/examples/scripts may draw ad hoc
        if config.module_matches(ctx.modname, config.RNG_ALLOWED_MODULES):
            return
        aliases = import_aliases(ctx.tree)
        strict = config.module_matches(ctx.modname, config.KERNEL_STRICT_MODULES)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    if a.name == "random" or a.name.startswith("random."):
                        yield self.finding(
                            ctx,
                            node,
                            "stdlib 'random' import outside the sampler "
                            "modules; use a seeded numpy Generator from "
                            "repro.util.rngutil in an allowlisted module",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module:
                    root = node.module.split(".")[0]
                    if root == "random":
                        yield self.finding(
                            ctx,
                            node,
                            "stdlib 'random' import outside the sampler "
                            "modules; use a seeded numpy Generator from "
                            "repro.util.rngutil in an allowlisted module",
                        )
            elif isinstance(node, ast.Call):
                target = resolve_call_target(node.func, aliases)
                if target is None:
                    continue
                tail = target.split(".")[-1]
                if tail in config.RNG_CONSTRUCTORS:
                    yield self.finding(
                        ctx,
                        node,
                        f"RNG construction ({tail}) outside the sampler "
                        f"modules; seed handling belongs in "
                        f"repro.util.rngutil / the generation layer",
                    )
                elif ".random." in f".{target}" and target.startswith(
                    ("numpy.random.", "random.")
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"global-RNG-state draw ({target}) outside the "
                        f"sampler modules; draws must come from an "
                        f"explicitly passed seeded Generator",
                    )
                elif strict and tail in config.RNG_DRAW_METHODS:
                    yield self.finding(
                        ctx,
                        node,
                        f"draw-shaped call (.{tail}(...)) inside strict "
                        f"kernel module {ctx.modname}; kernels must be "
                        f"deterministic — sample host-side before the "
                        f"batch boundary",
                    )


@register
class WallClockCall(Rule):
    """RL006 — nothing under ``src/repro`` reads a wall clock.

    Analysis results must be a function of inputs and seeds alone, and
    device timing is only honest behind ``xp.synchronize()``.  Timing
    lives in ``benchmarks/`` (pytest-benchmark, outside ``src``); a
    clock read inside the library would smuggle nondeterminism into
    results or record async-launch times as kernel times.
    """

    id = "RL006"
    name = "wall-clock-call"
    summary = (
        "no wall-clock reads (time.time/perf_counter/monotonic, "
        "timeit.default_timer) under src/repro; timing belongs in "
        "benchmarks/"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not config.module_matches(ctx.modname, config.SRC_NAMESPACE):
            return  # timing belongs in benchmarks/ — outside repro.*
        if config.module_matches(ctx.modname, config.WALL_CLOCK_ALLOWED_MODULES):
            return
        banned = {f"{mod}.{attr}" for mod, attr in config.WALL_CLOCK_CALLS}
        aliases = import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_target(node.func, aliases)
            if target in banned:
                yield self.finding(
                    ctx,
                    node,
                    f"wall-clock read ({target}) in the analysis tree; "
                    f"results must depend only on inputs and seeds — time "
                    f"things in benchmarks/ instead",
                )
