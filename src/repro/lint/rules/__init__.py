"""Rule framework and registry.

A rule is a class with an ``id`` (``RLxxx``), a short ``name``, a
``summary`` (one line, shown by ``--list-rules``), and a
``check(ctx)`` generator yielding :class:`~repro.lint.findings.Finding`
objects.  Rules register themselves with :func:`register`; the engine
instantiates each registered rule once per linted module.

Shared AST helpers live here so rule modules stay small: dotted-name
extraction, import-alias resolution, and the module-scope walker that
distinguishes import-time code from function bodies (the lazy-import
escape hatch RL002/RL007 honour).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
)

from repro.lint.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.callgraph import ModuleResolver
    from repro.lint.effects import ProjectSummary


@dataclass
class ModuleContext:
    """Everything a rule may look at for one module."""

    path: str
    modname: str
    tree: ast.Module
    source_lines: Sequence[str] = field(default_factory=list)
    #: True when the file is a package ``__init__.py`` (relative-import
    #: resolution differs: level 1 names the package itself).
    is_package: bool = False
    #: pass-1 whole-program summary (effect fixpoint + declaration
    #: tables) the transitive rules resolve this module against; the
    #: engine always supplies one (a single-module summary when linting
    #: an isolated source blob).
    project: Optional["ProjectSummary"] = None
    #: per-module resolved-call-site cache shared by the transitive
    #: rules (built lazily by the first one that needs it).
    resolver: Optional["ModuleResolver"] = field(
        default=None, repr=False, compare=False
    )


class Rule:
    """Base class; subclasses override :meth:`check`."""

    id: str = "RL000"
    name: str = "abstract"
    summary: str = ""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: ModuleContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            message=message,
        )


RULES: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    if cls.id in RULES:
        raise ValueError(f"duplicate rule id {cls.id}")
    RULES[cls.id] = cls
    return cls


def all_rule_ids() -> List[str]:
    """Every reportable rule ID, including the engine/meta pseudo-rules."""
    from repro.lint.engine import PARSE_ERROR_ID
    from repro.lint.suppress import UNUSED_SUPPRESSION_ID

    return sorted(set(RULES) | {UNUSED_SUPPRESSION_ID, PARSE_ERROR_ID})


# -- shared AST helpers -----------------------------------------------------


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the dotted things they import.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from time import perf_counter as pc`` -> ``{"pc": "time.perf_counter"}``.
    Only absolute imports are recorded (relative ones never alias the
    stdlib/third-party modules the determinism rules resolve).
    """
    out: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                out[a.asname or a.name.split(".")[0]] = (
                    a.name if a.asname else a.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            for a in node.names:
                if a.name == "*":
                    continue
                out[a.asname or a.name] = f"{node.module}.{a.name}"
    return out


def resolve_call_target(func: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Dotted call target with the leading alias expanded.

    ``pc()`` -> ``time.perf_counter`` under
    ``from time import perf_counter as pc``; ``t.monotonic()`` ->
    ``time.monotonic`` under ``import time as t``.
    """
    dotted = dotted_name(func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    expanded = aliases.get(head, head)
    return f"{expanded}.{rest}" if rest else expanded


def _is_type_checking_guard(node: ast.If) -> bool:
    test = node.test
    name = dotted_name(test)
    return name in ("TYPE_CHECKING", "typing.TYPE_CHECKING")


def module_scope_imports(
    tree: ast.Module,
) -> Iterator[Tuple[ast.stmt, bool]]:
    """Imports that execute at module import time.

    Yields ``(import_node, type_checking_guarded)``.  Recurses through
    top-level ``if``/``try``/``with`` and class bodies (all run at
    import), but never into function bodies — a function-body import is
    the sanctioned lazy escape hatch.
    """

    def walk(body: Sequence[ast.stmt], guarded: bool) -> Iterator[Tuple[ast.stmt, bool]]:
        for node in body:
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                yield node, guarded
            elif isinstance(node, ast.If):
                g = guarded or _is_type_checking_guard(node)
                yield from walk(node.body, g)
                yield from walk(node.orelse, guarded)
            elif isinstance(node, ast.Try):
                yield from walk(node.body, guarded)
                for handler in node.handlers:
                    yield from walk(handler.body, guarded)
                yield from walk(node.orelse, guarded)
                yield from walk(node.finalbody, guarded)
            elif isinstance(node, ast.ClassDef):
                yield from walk(node.body, guarded)
            elif isinstance(node, (ast.With,)):
                yield from walk(node.body, guarded)
    yield from walk(tree.body, False)


def imported_module_targets(
    node: ast.stmt, ctx: ModuleContext
) -> List[str]:
    """Absolute dotted module targets of one import statement.

    Relative imports are resolved against ``ctx.modname`` (a package
    ``__init__`` resolves level 1 to itself).  For ``from pkg import
    name`` both ``pkg`` and ``pkg.name`` are returned — statically,
    ``name`` may be a submodule.
    """
    targets: List[str] = []
    if isinstance(node, ast.Import):
        targets.extend(a.name for a in node.names)
    elif isinstance(node, ast.ImportFrom):
        if node.level == 0:
            base = node.module or ""
        else:
            parts = ctx.modname.split(".")
            # level 1 inside a package __init__ is the package itself;
            # inside a plain module it is the containing package.
            drop = node.level - 1 if ctx.is_package else node.level
            if drop >= len(parts):
                parts = []
            elif drop:
                parts = parts[:-drop]
            base = ".".join(parts + ([node.module] if node.module else []))
        if base:
            targets.append(base)
            for a in node.names:
                if a.name != "*":
                    targets.append(f"{base}.{a.name}")
    return targets


# Populate the registry (import order fixes --list-rules grouping).
from repro.lint.rules import imports as _imports  # noqa: E402,F401
from repro.lint.rules import determinism as _determinism  # noqa: E402,F401
from repro.lint.rules import dtype as _dtype  # noqa: E402,F401
from repro.lint.rules import device as _device  # noqa: E402,F401
from repro.lint.rules import transitive as _transitive  # noqa: E402,F401
from repro.lint.rules import asyncatomic as _asyncatomic  # noqa: E402,F401

__all__ = [
    "ModuleContext",
    "RULES",
    "Rule",
    "all_rule_ids",
    "dotted_name",
    "import_aliases",
    "imported_module_targets",
    "module_scope_imports",
    "register",
    "resolve_call_target",
]
