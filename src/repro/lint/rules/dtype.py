"""RL004 — float64 pinning: no ``float32`` in the kernel surface."""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint import config
from repro.lint.findings import Finding
from repro.lint.rules import ModuleContext, Rule, register


@register
class Float32InKernels(Rule):
    """RL004 — ``repro.vector`` computes in float64, full stop.

    Verdict parity with the scalar reference holds because every batch
    boundary pins inputs to float64 (``_pinned``, the ``asarray(...,
    dtype=ns.float64)`` entries); a ``float32`` dtype anywhere in the
    kernel surface would silently run knife-edge comparisons at half
    precision on some backend.  The only sanctioned appearances are the
    pin sites themselves (the namespace attribute kernels use to
    *detect* f32 inputs), each annotated with a suppression pragma
    carrying its justification.
    """

    id = "RL004"
    name = "float32-in-kernels"
    summary = (
        "no float32 literal/dtype inside repro.vector outside "
        "pragma-annotated pin sites (float64 is pinned at batch "
        "boundaries)"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not config.module_matches(ctx.modname, config.KERNEL_PACKAGES):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute) and node.attr == "float32":
                yield self.finding(
                    ctx,
                    node,
                    "float32 dtype attribute in the kernel surface; "
                    "kernels pin float64 at batch boundaries — if this is "
                    "a deliberate pin-site helper, annotate it with "
                    "# repro-lint: disable=RL004 -- <why>",
                )
            elif isinstance(node, ast.Name) and node.id == "float32":
                yield self.finding(
                    ctx,
                    node,
                    "bare float32 name in the kernel surface; kernels pin "
                    "float64 at batch boundaries",
                )
            elif isinstance(node, ast.Call):
                # dtype="float32" / astype("float32") string forms.
                strings = [
                    kw.value
                    for kw in node.keywords
                    if kw.arg == "dtype"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value == "float32"
                ]
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "astype"
                ):
                    strings.extend(
                        a
                        for a in node.args
                        if isinstance(a, ast.Constant) and a.value == "float32"
                    )
                for s in strings:
                    yield self.finding(
                        ctx,
                        s,
                        'dtype "float32" string in the kernel surface; '
                        "kernels pin float64 at batch boundaries",
                    )
