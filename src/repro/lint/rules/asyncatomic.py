"""RL013 — no await-straddling state mutation in the service layer."""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint import config
from repro.lint.asynccfg import analyze_async_def
from repro.lint.findings import Finding
from repro.lint.rules import ModuleContext, Rule, register


@register
class AwaitStraddlingMutation(Rule):
    """RL013 — validate-and-mutate must happen in one atomic region.

    In :mod:`repro.service` every per-device structure (the
    ``AdmissionState``, batcher pending lists, registries) is shared by
    all coroutines on the event loop.  Code that reads such state,
    awaits, and then mutates it is acting on a value that may have
    changed while suspended — the check-then-act race the engine's
    ordered-confirmation/rollback design defends against at runtime.
    This rule enforces it statically via the
    :mod:`repro.lint.asynccfg` dataflow: re-read the state after the
    await (re-validation), mutate before the first await (reserve,
    then confirm), or roll back in an ``except``/``finally`` handler
    (exempt regions).
    """

    id = "RL013"
    name = "await-straddling-mutation"
    summary = (
        "async service code must not mutate self-rooted state it last "
        "read before an await; re-validate, mutate-then-await, or roll "
        "back in an except handler"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not config.module_matches(ctx.modname, config.ASYNC_STATE_MODULES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            for hazard in analyze_async_def(node):
                yield Finding(
                    path=ctx.path,
                    line=hazard.line,
                    col=hazard.col,
                    rule=self.id,
                    message=(
                        f"{hazard.path} is mutated here but was last "
                        f"read before the await at line "
                        f"{hazard.await_line}; the value may have "
                        f"changed while suspended — re-read it after "
                        f"the await, mutate before awaiting, or roll "
                        f"back in an except handler"
                    ),
                )
