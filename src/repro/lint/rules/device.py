"""RL005 — no implicit host-device sync inside kernel pass loops."""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.lint import config
from repro.lint.findings import Finding
from repro.lint.rules import ModuleContext, Rule, register

_LOOP_NODES = (
    ast.For,
    ast.While,
    ast.AsyncFor,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
)


@register
class HostSyncInKernelLoop(Rule):
    """RL005 — sync only at batch boundaries, never per event step.

    ``.item()``, ``.cpu()``, ``.tolist()`` and zero-arg ``.get()``
    (cupy's device→host transfer; ``d.get(key)`` dict lookups keep
    their argument and stay legal) each force a device round-trip.
    Inside the fused pass loops of ``sim_vec``/``placement_vec`` that
    turns one kernel launch per pass into one stall per event — the
    exact overhead the fused-stepping refactor removed.  Device values
    cross to the host once per batch, via ``xp.asnumpy``/
    ``xp.synchronize()`` at the boundary.
    """

    id = "RL005"
    name = "host-sync-in-kernel-loop"
    summary = (
        "no .item()/.cpu()/.tolist()/zero-arg .get() inside "
        "sim_vec/placement_vec loops; host↔device sync only at batch "
        "boundaries via xp.synchronize()"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not config.module_matches(ctx.modname, config.SYNC_SCOPED_MODULES):
            return
        yield from self._walk(ctx, ctx.tree, loop_depth=0)

    def _walk(
        self, ctx: ModuleContext, node: ast.AST, loop_depth: int
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            depth = loop_depth + (1 if isinstance(child, _LOOP_NODES) else 0)
            if (
                depth > 0
                and isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr in config.HOST_SYNC_METHODS
            ):
                is_get = child.func.attr == "get"
                if not (is_get and (child.args or child.keywords)):
                    yield self.finding(
                        ctx,
                        child,
                        f".{child.func.attr}() inside a kernel pass loop "
                        f"forces a host-device sync per iteration; hoist it "
                        f"to the batch boundary (xp.asnumpy / "
                        f"xp.synchronize())",
                    )
            yield from self._walk(ctx, child, depth)
