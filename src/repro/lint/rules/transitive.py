"""Transitive (whole-program) rules: RL010, RL011, RL012.

These consume the pass-1 :class:`~repro.lint.effects.ProjectSummary` on
``ctx.project``: each rule re-resolves the current module's call sites
against the project's declaration tables (via
:class:`~repro.lint.callgraph.ModuleResolver`, cached per module on the
context) and flags the *call site* whose callee carries a banned effect
— with a deterministic witness chain down to the seeding function, so
the finding explains the path the per-module rules cannot see.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint import config
from repro.lint.callgraph import ModuleResolver
from repro.lint.effects import ProjectSummary, render_chain
from repro.lint.findings import Finding
from repro.lint.rules import ModuleContext, Rule, register

_LOOP_NODES = (
    ast.For,
    ast.While,
    ast.AsyncFor,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
)


def get_resolver(ctx: ModuleContext) -> Optional[ModuleResolver]:
    """The module's resolved call sites, built once and cached on the
    context (RL010/011/012 share it)."""
    if ctx.project is None:
        return None
    if ctx.resolver is None:
        ctx.resolver = ModuleResolver(
            ctx.tree,
            ctx.modname,
            ctx.is_package,
            ctx.project.functions,
            ctx.project.classes,
        )
    return ctx.resolver


@register
class TransitiveRngIntoKernel(Rule):
    """RL010 — RNG must not *reach* kernel code through any call chain.

    RL003 flags the draw site itself; a draw buried two helpers deep
    was invisible to it.  This rule flags every call, in kernel modules
    outside the sampler allowlist, whose callee's fixpoint effect set
    contains ``RNG`` — the helper chain is named in the message.  The
    documented host-side samplers (``config.RNG_SANCTIONED_FUNCTIONS``)
    neither seed the effect nor are their own call sites checked.
    """

    id = "RL010"
    name = "transitive-rng-into-kernel"
    summary = (
        "no call chain from repro.vector kernel code reaches an RNG "
        "draw (whole-program closure of RL003)"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not config.module_matches(ctx.modname, config.SRC_NAMESPACE):
            return
        if not config.module_matches(ctx.modname, config.KERNEL_PACKAGES):
            return
        if config.module_matches(ctx.modname, config.RNG_ALLOWED_MODULES):
            return
        resolver = get_resolver(ctx)
        if resolver is None:
            return
        project: ProjectSummary = ctx.project  # type: ignore[assignment]
        for call, caller, callee in resolver.call_sites():
            if caller in config.RNG_SANCTIONED_FUNCTIONS:
                continue
            if "RNG" in project.effects_of(callee):
                yield self.finding(
                    ctx,
                    call,
                    f"call from kernel code reaches an RNG draw via "
                    f"{render_chain(project, callee, 'RNG')}; sample "
                    f"host-side before the batch boundary (RL003's "
                    f"transitive closure)",
                )


@register
class TransitiveHostSyncInLoop(Rule):
    """RL011 — no call chain from a fused pass loop reaches host sync.

    RL005 bans ``.item()``/``.cpu()``/``.tolist()``/zero-arg ``.get()``
    written *directly* inside ``sim_vec``/``placement_vec`` loops; the
    same stall hidden in a helper one frame away passed it.  This rule
    flags calls inside those loops whose callee's effect set contains
    ``HOST_SYNC``.
    """

    id = "RL011"
    name = "transitive-host-sync-in-loop"
    summary = (
        "no call chain from a sim_vec/placement_vec pass loop reaches "
        ".item()/.cpu()/.tolist()/zero-arg .get() (closure of RL005)"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not config.module_matches(ctx.modname, config.SYNC_SCOPED_MODULES):
            return
        resolver = get_resolver(ctx)
        if resolver is None:
            return
        project: ProjectSummary = ctx.project  # type: ignore[assignment]
        yield from self._walk(ctx, ctx.tree, 0, resolver, project)

    def _walk(
        self,
        ctx: ModuleContext,
        node: ast.AST,
        loop_depth: int,
        resolver: ModuleResolver,
        project: ProjectSummary,
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            depth = loop_depth + (1 if isinstance(child, _LOOP_NODES) else 0)
            if depth > 0 and isinstance(child, ast.Call):
                callee = resolver.callee_of(child)
                if callee is not None and "HOST_SYNC" in project.effects_of(
                    callee
                ):
                    yield self.finding(
                        ctx,
                        child,
                        f"call inside a kernel pass loop reaches a "
                        f"host-device sync via "
                        f"{render_chain(project, callee, 'HOST_SYNC')}; "
                        f"hoist it to the batch boundary "
                        f"(xp.asnumpy / xp.synchronize())",
                    )
            yield from self._walk(ctx, child, depth, resolver, project)


@register
class TransitiveWallClock(Rule):
    """RL012 — wall-clock influence must not spread past the clock shim.

    RL006 flags a direct ``time.*`` read; a pragma-excused (or merely
    unscoped) timing helper would still leak nondeterminism into every
    caller.  This rule flags any call, anywhere under ``repro.*``
    except ``repro.service.clock``, whose callee's effect set contains
    ``WALL_CLOCK`` — so a clock read can be excused locally but never
    inherited silently.
    """

    id = "RL012"
    name = "transitive-wall-clock"
    summary = (
        "no call chain under repro.* (repro.service.clock excepted) "
        "reaches a wall-clock read (closure of RL006)"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not config.module_matches(ctx.modname, config.SRC_NAMESPACE):
            return
        if config.module_matches(
            ctx.modname, config.WALL_CLOCK_ALLOWED_MODULES
        ):
            return
        resolver = get_resolver(ctx)
        if resolver is None:
            return
        project: ProjectSummary = ctx.project  # type: ignore[assignment]
        for call, _caller, callee in resolver.call_sites():
            if "WALL_CLOCK" in project.effects_of(callee):
                yield self.finding(
                    ctx,
                    call,
                    f"call reaches a wall-clock read via "
                    f"{render_chain(project, callee, 'WALL_CLOCK')}; "
                    f"results must depend only on inputs and seeds — "
                    f"route timing through repro.service.clock or move "
                    f"it to benchmarks/",
                )
