"""AST-based invariant linter for the reproduction's contracts.

Every parity guarantee this repo rests on — bit-identical verdicts vs.
the scalar reference, the :mod:`repro.vector.xp` rule that no kernel
imports numpy directly, lazy-only torch/cupy imports, float64 pinning
at batch boundaries, host-side seeded sampling — is a *structural*
property of the source.  This package turns those prose contracts
(ROADMAP.md "Array backends", the module docstrings of
:mod:`repro.core` and :mod:`repro.vector`) into machine-checked rules
over the Python AST, gated in CI.

The per-module rules (RL001–RL007) read one file at a time; the
transitive rules (RL010–RL013) consume a whole-program pass that builds
the project call graph (:mod:`repro.lint.callgraph`), seeds per-function
effect sets over {RNG, WALL_CLOCK, HOST_SYNC, DEVICE_TRANSFER,
STATE_MUTATION}, and propagates them to a deterministic fixpoint
(:mod:`repro.lint.effects`) — so a draw or a stall buried behind any
chain of helpers is still caught, with the witness chain in the message.

Usage::

    PYTHONPATH=src python -m repro.lint src            # lint the tree
    PYTHONPATH=src python -m repro.lint src --jobs 4   # parallel pass 2
    PYTHONPATH=src python -m repro.lint --effects src  # effect summary
    PYTHONPATH=src python -m repro.lint --list-rules   # rule catalogue

Rules (see :mod:`repro.lint.rules` and the README "Invariants & lint"
section for the contract each one enforces):

====== =====================================================================
RL001  no direct numpy import inside ``repro.vector`` (only ``xp.py``)
RL002  no module-top-level ``torch``/``cupy`` import (lazy-only)
RL003  no RNG construction/draws outside the sampler/generation modules
RL004  no ``float32`` outside pragma-annotated pin sites in ``repro.vector``
RL005  no implicit host-device sync inside kernel pass loops
RL006  no wall-clock calls under ``src/repro`` (benchmarks live outside)
RL007  import layering between the ``repro.*`` packages
RL008  unused ``# repro-lint: disable=`` suppression (meta-rule)
RL009  parse error (meta-rule; an unreadable file cannot be checked)
RL010  no call chain from kernel code reaches an RNG draw (closes RL003)
RL011  no call chain from a fused pass loop reaches host sync (closes RL005)
RL012  no call chain under ``repro.*`` reaches a wall clock (closes RL006)
RL013  no await-straddling state mutation in ``repro.service`` coroutines
====== =====================================================================

Deliberate exceptions are annotated in-source::

    x = backend.float32  # repro-lint: disable=RL004 -- reason

A pragma that stops matching any finding is itself reported (RL008), so
exemptions cannot silently outlive the code they excuse.

This package imports only :mod:`repro.util` from the rest of ``repro``
(it sits at the bottom of the RL007 layering, next to ``repro.util``,
whose ``parallel_map`` drives ``--jobs``) and has no third-party
dependencies, so it is importable in any environment the test suite
runs in.
"""

from repro.lint.effects import ProjectSummary, effects_report
from repro.lint.engine import (
    LintResult,
    build_project_for,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.lint.findings import Finding
from repro.lint.rules import RULES, Rule, all_rule_ids

__all__ = [
    "Finding",
    "LintResult",
    "ProjectSummary",
    "RULES",
    "Rule",
    "all_rule_ids",
    "build_project_for",
    "effects_report",
    "lint_file",
    "lint_paths",
    "lint_source",
]
