"""Text and JSON reporters over a :class:`~repro.lint.engine.LintResult`."""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.lint.engine import LintResult
from repro.lint.findings import Finding

JSON_FORMAT_VERSION = 1


def text_report(result: LintResult) -> str:
    """One ``path:line:col: RLxxx message`` line per finding + summary."""
    lines: List[str] = [f.render() for f in result.findings]
    if result.clean:
        lines.append(
            f"repro-lint: {result.files_checked} file(s) checked, clean"
        )
    else:
        by_rule = ", ".join(
            f"{rule} x{n}" for rule, n in result.counts_by_rule().items()
        )
        lines.append(
            f"repro-lint: {len(result.findings)} finding(s) in "
            f"{result.files_checked} file(s) checked ({by_rule})"
        )
    return "\n".join(lines)


def json_report(result: LintResult) -> Dict[str, Any]:
    """JSON-ready dict; round-trips through :func:`result_from_json`."""
    return {
        "version": JSON_FORMAT_VERSION,
        "clean": result.clean,
        "files_checked": result.files_checked,
        "counts_by_rule": result.counts_by_rule(),
        "findings": [f.to_json() for f in result.findings],
    }


def render_json(result: LintResult) -> str:
    return json.dumps(json_report(result), indent=2, sort_keys=True) + "\n"


def result_from_json(text: str) -> LintResult:
    """Rebuild a :class:`LintResult` from :func:`render_json` output."""
    obj = json.loads(text)
    if obj.get("version") != JSON_FORMAT_VERSION:
        raise ValueError(
            f"unsupported repro-lint report version: {obj.get('version')!r}"
        )
    return LintResult(
        findings=[Finding.from_json(f) for f in obj["findings"]],
        files_checked=int(obj["files_checked"]),
    )
