"""Pass 1 of the whole-program analyzer: declarations and call edges.

:func:`collect_module` walks one module's AST into flat declaration
tables — every function and method under a dotted *qualname*
(``mod.func``, ``mod.Class.method``, ``mod.outer.inner``), every class
with its best-effort-resolved base names, and an import-alias map that
covers module-level, class-level, relative, and function-body (lazy)
imports alike.

:func:`resolve_call` is the conservative call resolver shared by the
effect fixpoint (pass 1) and the transitive rules (pass 2): it claims a
``caller -> callee`` edge only when the target is statically certain —
a same-module or alias-imported project function, a ``self.m()`` /
``cls.m()`` method looked up through the in-project base-class chain, a
class call (edge to ``__init__``), or a method on a local variable
assigned from a project-class constructor in the same function.  An
unresolvable call contributes no edge: the analysis under-approximates
the call graph and never invents reachability.

This module imports only the stdlib and :mod:`repro.lint.config`
(keeping the ``repro.lint`` package at layer 0 and import-cycle-free).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    Container,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


@dataclass
class FunctionDecl:
    """One function/method declaration (pass-1 transient; holds AST)."""

    qualname: str
    modname: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    #: qualname of the immediately enclosing class, if this is a method
    cls: Optional[str] = None
    is_async: bool = False


@dataclass
class ClassDecl:
    """One class declaration with alias-expanded base-name candidates."""

    qualname: str
    modname: str
    bases: Tuple[str, ...] = ()


@dataclass
class ModuleDecls:
    """Everything :func:`collect_module` extracts from one module."""

    modname: str
    is_package: bool = False
    aliases: Dict[str, str] = field(default_factory=dict)
    functions: List[FunctionDecl] = field(default_factory=list)
    classes: Dict[str, ClassDecl] = field(default_factory=dict)


def _resolve_relative(modname: str, is_package: bool, level: int,
                      module: Optional[str]) -> str:
    """Absolute base module of a relative import, per the engine's rule:
    level 1 inside a package ``__init__`` is the package itself."""
    parts = modname.split(".")
    drop = level - 1 if is_package else level
    if drop >= len(parts):
        parts = []
    elif drop:
        parts = parts[:-drop]
    return ".".join(parts + ([module] if module else []))


def collect_aliases(tree: ast.Module, modname: str,
                    is_package: bool) -> Dict[str, str]:
    """Local name -> absolute dotted target, for *every* import in the
    file (function-body lazy imports included — the call graph must see
    through the sanctioned lazy-import escape hatch)."""
    out: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                out[a.asname or a.name.split(".")[0]] = (
                    a.name if a.asname else a.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module or ""
            else:
                base = _resolve_relative(
                    modname, is_package, node.level, node.module
                )
            if not base:
                continue
            for a in node.names:
                if a.name != "*":
                    out[a.asname or a.name] = f"{base}.{a.name}"
    return out


def _base_candidates(node: ast.ClassDef, aliases: Dict[str, str],
                     modname: str) -> Tuple[str, ...]:
    """Dotted candidates for each base: the alias-expanded name plus the
    same-module qualname a bare base usually means."""
    out: List[str] = []
    for base in node.bases:
        parts: List[str] = []
        cur: ast.AST = base
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            continue
        head, rest = cur.id, list(reversed(parts))
        expanded = ".".join([aliases.get(head, head)] + rest)
        out.append(expanded)
        if head not in aliases and not rest:
            out.append(f"{modname}.{head}")
    return tuple(out)


def collect_module(tree: ast.Module, modname: str,
                   is_package: bool = False) -> ModuleDecls:
    """Flatten one module into declaration tables (see module docstring)."""
    decls = ModuleDecls(
        modname=modname,
        is_package=is_package,
        aliases=collect_aliases(tree, modname, is_package),
    )

    def walk(body: Sequence[ast.stmt], prefix: str,
             cls: Optional[str]) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}.{node.name}"
                decls.functions.append(
                    FunctionDecl(
                        qualname=qual,
                        modname=modname,
                        node=node,
                        cls=cls,
                        is_async=isinstance(node, ast.AsyncFunctionDef),
                    )
                )
                walk(node.body, qual, None)
            elif isinstance(node, ast.ClassDef):
                qual = f"{prefix}.{node.name}"
                decls.classes[qual] = ClassDecl(
                    qualname=qual,
                    modname=modname,
                    bases=_base_candidates(node, decls.aliases, modname),
                )
                walk(node.body, qual, qual)
            elif isinstance(node, (ast.If, ast.Try, ast.With)):
                for sub in ast.iter_child_nodes(node):
                    if isinstance(sub, ast.stmt):
                        walk([sub], prefix, cls)
                    elif isinstance(sub, ast.ExceptHandler):
                        walk(sub.body, prefix, cls)

    walk(tree.body, modname, None)
    return decls


def find_method(name: str, cls: str, functions: Container[str],
                classes: Mapping[str, "ClassDecl | Tuple[str, ...]"],
                _seen: Optional[Set[str]] = None) -> Optional[str]:
    """``cls.name`` through the in-project base chain (cycle-guarded)."""
    seen = _seen if _seen is not None else set()
    if cls in seen:
        return None
    seen.add(cls)
    cand = f"{cls}.{name}"
    if cand in functions:
        return cand
    info = classes.get(cls)
    if info is None:
        return None
    bases = info.bases if isinstance(info, ClassDecl) else info
    for base in bases:
        if base in classes:
            hit = find_method(name, base, functions, classes, seen)
            if hit is not None:
                return hit
    return None


def _lookup(dotted: str, functions: Container[str],
            classes: Mapping[str, "ClassDecl | Tuple[str, ...]"],
            ) -> Optional[str]:
    """A dotted absolute name -> project function qualname, treating a
    class call as a call of its ``__init__`` (when one is declared)."""
    if dotted in functions:
        return dotted
    if dotted in classes:
        init = f"{dotted}.__init__"
        return init if init in functions else None
    return None


def resolve_call(call: ast.Call, caller: FunctionDecl,
                 aliases: Mapping[str, str],
                 local_types: Mapping[str, str],
                 functions: Container[str],
                 classes: Mapping[str, "ClassDecl | Tuple[str, ...]"],
                 ) -> Optional[str]:
    """The conservative resolver (see module docstring); None = no edge."""
    func = call.func
    if isinstance(func, ast.Name):
        name = func.id
        # Nested sibling first (mod.outer.inner shadows mod.inner), then
        # the alias-expanded import target, then a module-level name.
        for cand in (
            f"{caller.qualname}.{name}",
            aliases.get(name, ""),
            f"{caller.modname}.{name}",
        ):
            if not cand:
                continue
            hit = _lookup(cand, functions, classes)
            if hit is not None:
                return hit
        return None
    if not isinstance(func, ast.Attribute):
        return None
    parts: List[str] = [func.attr]
    cur: ast.AST = func.value
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    head = cur.id
    parts.reverse()
    if head in ("self", "cls"):
        if caller.cls is not None and len(parts) == 1:
            return find_method(parts[0], caller.cls, functions, classes)
        return None
    if head in local_types and len(parts) == 1:
        return find_method(parts[0], local_types[head], functions, classes)
    dotted = ".".join([aliases.get(head, head)] + parts)
    return _lookup(dotted, functions, classes)


def local_constructor_types(fn: ast.AST, modname: str,
                            aliases: Mapping[str, str],
                            classes: Mapping[str, "ClassDecl | Tuple[str, ...]"],
                            ) -> Dict[str, str]:
    """``var -> class qualname`` hints from ``var = ClassName(...)``
    assignments in ``fn``'s own body (nested defs excluded).  A name
    assigned from anything else afterwards drops its hint."""
    out: Dict[str, str] = {}
    for stmt in iter_own_nodes(fn):
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            continue
        target = stmt.targets[0]
        if not isinstance(target, ast.Name):
            continue
        hint: Optional[str] = None
        if isinstance(stmt.value, ast.Call):
            cfunc = stmt.value.func
            cand = ""
            if isinstance(cfunc, ast.Name):
                cand = aliases.get(cfunc.id, f"{modname}.{cfunc.id}")
            elif isinstance(cfunc, ast.Attribute):
                cparts = [cfunc.attr]
                cval: ast.AST = cfunc.value
                while isinstance(cval, ast.Attribute):
                    cparts.append(cval.attr)
                    cval = cval.value
                if isinstance(cval, ast.Name):
                    cparts.reverse()
                    cand = ".".join(
                        [aliases.get(cval.id, cval.id)] + cparts
                    )
            if cand in classes:
                hint = cand
        if hint is None:
            out.pop(target.id, None)
        else:
            out[target.id] = hint
    return out


def iter_own_nodes(fn: ast.AST) -> Iterator[ast.AST]:
    """Every AST node in ``fn``'s body that executes *as* ``fn`` — the
    walk does not descend into nested function/class definitions (their
    bodies are separate declarations with their own effects)."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _SCOPE_NODES):
            continue
        stack.extend(ast.iter_child_nodes(node))


def call_edges(decls: ModuleDecls, functions: Container[str],
               classes: Mapping[str, "ClassDecl | Tuple[str, ...]"],
               ) -> Dict[str, Tuple[str, ...]]:
    """Resolved callee qualnames per function in ``decls`` (sorted,
    deduplicated — the deterministic edge lists the fixpoint consumes)."""
    out: Dict[str, Tuple[str, ...]] = {}
    for fn in decls.functions:
        local_types = local_constructor_types(
            fn.node, decls.modname, decls.aliases, classes
        )
        callees: Set[str] = set()
        for node in iter_own_nodes(fn.node):
            if isinstance(node, ast.Call):
                target = resolve_call(
                    node, fn, decls.aliases, local_types, functions, classes
                )
                if target is not None:
                    callees.add(target)
        out[fn.qualname] = tuple(sorted(callees))
    return out


class ModuleResolver:
    """Pass-2 helper: resolved call sites of one module against a
    project summary, addressable by AST node identity."""

    def __init__(self, tree: ast.Module, modname: str, is_package: bool,
                 functions: Container[str],
                 classes: Mapping[str, "ClassDecl | Tuple[str, ...]"],
                 ) -> None:
        self.decls = collect_module(tree, modname, is_package)
        self._by_node: Dict[int, Tuple[str, str]] = {}
        self._sites: List[Tuple[ast.Call, str, str]] = []
        for fn in self.decls.functions:
            local_types = local_constructor_types(
                fn.node, modname, self.decls.aliases, classes
            )
            for node in iter_own_nodes(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                target = resolve_call(
                    node, fn, self.decls.aliases, local_types,
                    functions, classes,
                )
                if target is not None:
                    self._by_node[id(node)] = (fn.qualname, target)
                    self._sites.append((node, fn.qualname, target))

    def callee_of(self, call: ast.Call) -> Optional[str]:
        entry = self._by_node.get(id(call))
        return entry[1] if entry is not None else None

    def caller_of(self, call: ast.Call) -> Optional[str]:
        entry = self._by_node.get(id(call))
        return entry[0] if entry is not None else None

    def call_sites(self) -> List[Tuple[ast.Call, str, str]]:
        """``(call node, caller qualname, callee qualname)`` triples in
        source order of the callers' declarations."""
        return list(self._sites)
