"""Adaptive importance sampling for release-pattern searches.

The §6 simulation upper bound is refined by searching release patterns
(offsets, sporadic inter-arrival jitter) for deadline-miss
counterexamples.  Uniform pattern draws waste most of the budget far
from any miss; this package steers the same budget toward the patterns
most likely to miss with a cross-entropy-style loop over per-task
proposal distributions, scored by the simulators' near-miss channel
(``min_slack``).

Soundness: every sampled pattern — adaptive or uniform — is a *legal*
release pattern (offsets in ``[0, T_i)``, sporadic gaps ``>= T_i``), so
any miss it exhibits is a genuine certificate of unschedulability, and
callers always intersect the searched verdict with the synchronous/
periodic baseline.  Adaptivity therefore only changes *which* sound
refutations the budget finds, never the meaning of the verdict.

Layout:

* :mod:`repro.search.proposal` — :class:`SearchConfig` and the
  normalized per-task proposal family (truncated normal over ``[0, 1)``
  with a uniform-mixture floor, elite refitting);
* :mod:`repro.search.adaptive` — the generic budgeted search loop and
  its :class:`SearchOutcome`;
* :mod:`repro.search.patterns` — unit-cube -> legal-pattern mappings
  (numpy-only, shared with the scalar twins);
* :mod:`repro.search.drivers` — the batched offset/sporadic drivers
  (uniform and adaptive) on
  :func:`repro.vector.sim_vec.simulate_batch`; resolved lazily below
  because the scalar twins (:func:`repro.sim.offsets.
  adaptive_offset_search`, :func:`repro.sim.sporadic.
  adaptive_sporadic_search`) import this package from *underneath*
  :mod:`repro.vector` and must not drag it in at import time.
"""

from repro.search.adaptive import (
    SearchOutcome,
    adaptive_pattern_search,
    round_sizes,
)
from repro.search.patterns import offsets_from_unit, release_times_from_unit
from repro.search.proposal import UNIT_MAX, SearchConfig, UnitProposal

#: Batched drivers exposed at package level but imported on first use
#: (they pull in repro.vector; see the module docstring).
_DRIVER_EXPORTS = (
    "adaptive_offset_search_batch",
    "adaptive_sporadic_search_batch",
    "uniform_offset_search_batch",
    "uniform_sporadic_search_batch",
)

__all__ = [
    "SearchConfig",
    "SearchOutcome",
    "UnitProposal",
    "UNIT_MAX",
    "adaptive_pattern_search",
    "round_sizes",
    "offsets_from_unit",
    "release_times_from_unit",
    *_DRIVER_EXPORTS,
]


def __getattr__(name: str):
    if name in _DRIVER_EXPORTS:
        from repro.search import drivers

        return getattr(drivers, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
