"""Proposal distributions for the adaptive release-pattern search.

Patterns are parametrized on the **unit cube**: each (row, task) slot
carries one coordinate ``u in [0, 1)`` that the drivers map onto a legal
pattern coordinate — ``offset = u * T_i`` (always in ``[0, T_i)``) or a
sporadic gap ``T_i * (1 + u * jitter)`` (always ``>= T_i``).  Working in
normalized space keeps the proposal family task-scale-free and makes the
legality argument one line: any ``u`` in the cube is a legal pattern.

The proposal per slot is a **truncated normal** (mean/std clipped into
the cube) mixed with a **uniform floor**: each pattern is drawn from the
fitted proposal with probability ``1 - uniform_floor`` and uniformly
otherwise.  The floor keeps every region of pattern space reachable in
every round, so a collapsed proposal cannot lock the search out of the
true worst case; it changes only where the budget is spent, never what a
found miss means (soundness is pattern legality + baseline
intersection, see :mod:`repro.search`).

Refitting is the cross-entropy step: after a round, the ``elite_frac``
lowest-slack (closest-to-miss) patterns of each row refit that row's
per-task mean and std, with ``sigma_floor`` preventing premature
point-mass collapse.

All sampling is host-side numpy (like every seeded sampler in this
codebase — draw order pinned so the scalar twins replay identical
patterns); only the *simulation* of the sampled patterns is
backend-vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Largest double below 1.0 — the inclusive upper clip of the unit
#: coordinate, so ``u * T < T`` holds exactly in float64.
UNIT_MAX = float(np.nextafter(1.0, 0.0))


@dataclass(frozen=True)
class SearchConfig:
    """Knobs of the cross-entropy release-pattern search.

    ``rounds`` splits the pattern budget into that many adaptation
    rounds (round 0 is always pure uniform exploration); ``elite_frac``
    picks the fraction of lowest-slack patterns that refit the
    proposals; ``uniform_floor`` is the per-pattern probability of
    ignoring the fitted proposal and drawing uniformly (the soundness-
    preserving exploration floor); ``init_sigma``/``sigma_floor`` bound
    the proposal spread from above initially and from below forever.
    """

    rounds: int = 4
    elite_frac: float = 0.25
    uniform_floor: float = 0.2
    init_sigma: float = 0.35
    sigma_floor: float = 0.05

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        if not (0.0 < self.elite_frac <= 1.0):
            raise ValueError("elite_frac must be in (0, 1]")
        if not (0.0 <= self.uniform_floor <= 1.0):
            raise ValueError("uniform_floor must be in [0, 1]")
        if self.init_sigma <= 0.0:
            raise ValueError("init_sigma must be > 0")
        if not (0.0 < self.sigma_floor <= self.init_sigma):
            raise ValueError("sigma_floor must be in (0, init_sigma]")


class UnitProposal:
    """Per-(row, task) truncated-normal proposals over ``[0, 1)``.

    One independent proposal per row (taskset) — rows never share
    parameters or random draws, so a single-row search replays the exact
    stream of the same row inside a batch (the scalar/vector parity the
    twins are tested against).
    """

    def __init__(self, count: int, n_tasks: int, config: SearchConfig):
        if count < 0 or n_tasks < 0:
            raise ValueError("count and n_tasks must be >= 0")
        self.config = config
        self.mu = np.full((count, n_tasks), 0.5, dtype=np.float64)
        self.sigma = np.full((count, n_tasks), config.init_sigma, dtype=np.float64)

    def sample_row(
        self,
        row: int,
        rng: np.random.Generator,
        patterns: int,
        explore: bool,
    ) -> np.ndarray:
        """``(patterns, n_tasks)`` unit coordinates for one row.

        ``explore`` forces pure uniform draws (round 0).  The uniform
        base draw always happens first so the stream consumption per
        round is fixed whatever the mixture decides.
        """
        n = self.mu.shape[1]
        base = rng.uniform(0.0, 1.0, size=(patterns, n))
        if explore:
            return base
        keep_prop = rng.random(patterns) >= self.config.uniform_floor
        z = rng.standard_normal((patterns, n))
        prop = np.clip(self.mu[row] + self.sigma[row] * z, 0.0, UNIT_MAX)
        return np.where(keep_prop[:, None], prop, base)

    def refit_row(self, row: int, u: np.ndarray, slack: np.ndarray) -> None:
        """Cross-entropy refit of one row from its round's scored draws.

        ``u`` is the round's ``(patterns, n_tasks)`` coordinates,
        ``slack`` the per-pattern near-miss score (lower = closer to a
        miss).  The ``elite_frac`` lowest-slack patterns become the new
        mean/std, floored at ``sigma_floor``.
        """
        patterns = u.shape[0]
        if patterns == 0:
            return
        k = max(1, int(round(self.config.elite_frac * patterns)))
        elites = u[np.argsort(slack, kind="stable")[:k]]
        self.mu[row] = elites.mean(axis=0)
        self.sigma[row] = np.maximum(elites.std(axis=0), self.config.sigma_floor)
