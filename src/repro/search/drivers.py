"""Batched release-pattern search drivers on ``simulate_batch``.

The four entry points — uniform/adaptive x offsets/sporadic — fan the
pattern axis into the batch dimension of
:func:`repro.vector.sim_vec.simulate_batch` (rows repeated
consecutively, one pattern per repeat) and score with its ``min_slack``
channel, so they run on every :mod:`repro.vector.xp` backend.  Sampling
stays host-side (per-row numpy generators) for scalar-twin parity; the
pattern mappings live in :mod:`repro.search.patterns`.

This module imports :mod:`repro.vector` and therefore loads lazily via
the package ``__getattr__`` (the scalar twins sit *underneath*
``repro.vector`` on the import graph and must not pull it in).
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.fpga.device import Fpga
from repro.sched.base import Scheduler
from repro.search.adaptive import SearchOutcome, adaptive_pattern_search
from repro.search.patterns import offsets_from_unit, release_times_from_unit
from repro.search.proposal import SearchConfig
from repro.vector import xp
from repro.vector.batch import TaskSetBatch
from repro.vector.sim_vec import default_horizon_batch, simulate_batch


def _host_batch(batch: TaskSetBatch) -> TaskSetBatch:
    return TaskSetBatch(
        np.asarray(xp.asnumpy(batch.wcet), dtype=np.float64),
        np.asarray(xp.asnumpy(batch.period), dtype=np.float64),
        np.asarray(xp.asnumpy(batch.deadline), dtype=np.float64),
        np.asarray(xp.asnumpy(batch.area), dtype=np.float64),
    )


def _rows(batch: TaskSetBatch, idx: np.ndarray) -> TaskSetBatch:
    return TaskSetBatch(
        batch.wcet[idx], batch.period[idx], batch.deadline[idx], batch.area[idx]
    )


def _fan(batch: TaskSetBatch, times: int) -> TaskSetBatch:
    """Each row repeated ``times`` consecutively, so a ``(B, P)`` reshape
    of the fanned per-row results restores the (row, pattern) pairing."""
    return TaskSetBatch(
        np.repeat(batch.wcet, times, axis=0),
        np.repeat(batch.period, times, axis=0),
        np.repeat(batch.deadline, times, axis=0),
        np.repeat(batch.area, times, axis=0),
    )


def _trivial_outcome(count: int) -> SearchOutcome:
    return SearchOutcome(
        found=np.zeros(count, dtype=bool),
        min_slack=np.full(count, np.inf, dtype=np.float64),
        patterns_used=np.zeros(count, dtype=np.int64),
        rounds_run=0,
    )


def uniform_offset_search_batch(
    batch: TaskSetBatch,
    fpga: Union[float, Fpga],
    scheduler: Union[str, Scheduler] = "EDF-NF",
    *,
    patterns: int,
    rng: np.random.Generator,
    horizon_factor: int = 20,
    max_events: int = 1_000_000,
    array_backend: Optional[str] = None,
) -> SearchOutcome:
    """Legacy uniform offset search as one batched sweep.

    Draws ``patterns`` assignments per row — taskset-major ``(B, P, N)``
    uniform in ``[0, T_i)``, the exact stream order of per-taskset
    :func:`repro.sim.offsets.sample_offsets` calls — fans them into the
    batch dimension, and reduces with "any miss => found".  Each
    pattern's window is extended by its largest offset inside
    ``simulate_batch`` (the horizon-extension rule).
    """
    if patterns < 0:
        raise ValueError("patterns must be >= 0")
    host = _host_batch(batch)
    if patterns == 0 or host.count == 0:
        return _trivial_outcome(host.count)
    b, n = host.count, host.n_tasks
    high = np.broadcast_to(host.period[:, None, :], (b, patterns, n))
    offs = rng.uniform(0.0, high)
    res = simulate_batch(
        _fan(host, patterns),
        fpga,
        scheduler,
        offsets=offs.reshape(-1, n),
        horizon_factor=horizon_factor,
        max_events=max_events,
        array_backend=array_backend,
    )
    ok = res.schedulable.reshape(b, patterns)
    return SearchOutcome(
        found=~ok.all(axis=1),
        min_slack=res.min_slack.reshape(b, patterns).min(axis=1),
        patterns_used=np.full(b, patterns, dtype=np.int64),
        rounds_run=1,
    )


def adaptive_offset_search_batch(
    batch: TaskSetBatch,
    fpga: Union[float, Fpga],
    scheduler: Union[str, Scheduler] = "EDF-NF",
    *,
    budget: int,
    rngs: Sequence[np.random.Generator],
    config: SearchConfig = SearchConfig(),
    horizon_factor: int = 20,
    max_events: int = 1_000_000,
    array_backend: Optional[str] = None,
) -> SearchOutcome:
    """Cross-entropy offset search over a batch (one proposal per row).

    Spends ``budget`` patterns per row: uniform exploration first, then
    rounds of proposal-guided draws refit on the lowest-``min_slack``
    elites (see :mod:`repro.search.proposal`).  Offsets are always
    ``u * T_i in [0, T_i)`` — legal patterns, sound certificates.
    ``rngs`` is one generator per row; row ``b`` replays exactly as a
    single-row search with ``rngs[b]``
    (:func:`repro.sim.offsets.adaptive_offset_search` is that twin).
    """
    host = _host_batch(batch)

    def score(live: np.ndarray, u: np.ndarray):
        live_count, patterns, n = u.shape
        offs = offsets_from_unit(host.period[live][:, None, :], u)
        res = simulate_batch(
            _fan(_rows(host, live), patterns),
            fpga,
            scheduler,
            offsets=offs.reshape(-1, n),
            horizon_factor=horizon_factor,
            max_events=max_events,
            array_backend=array_backend,
        )
        return (
            res.min_slack.reshape(live_count, patterns),
            res.schedulable.reshape(live_count, patterns),
        )

    return adaptive_pattern_search(
        host.count, host.n_tasks, score, rngs, budget, config
    )


def uniform_sporadic_search_batch(
    batch: TaskSetBatch,
    fpga: Union[float, Fpga],
    scheduler: Union[str, Scheduler] = "EDF-NF",
    *,
    patterns: int,
    rng: np.random.Generator,
    max_jitter_factor: float = 0.5,
    horizon_factor: int = 20,
    max_events: int = 1_000_000,
    array_backend: Optional[str] = None,
) -> SearchOutcome:
    """Legacy uniform sporadic search as one batched sweep.

    Fans ``patterns`` repeats per row and lets ``simulate_batch`` draw
    one per-gap jittered schedule per fanned row from ``rng`` — the
    exact stream of sequential per-taskset
    :func:`repro.sim.sporadic.sample_release_schedule` calls.
    """
    if patterns < 0:
        raise ValueError("patterns must be >= 0")
    host = _host_batch(batch)
    if patterns == 0 or host.count == 0:
        return _trivial_outcome(host.count)
    b = host.count
    res = simulate_batch(
        _fan(host, patterns),
        fpga,
        scheduler,
        release="sporadic",
        jitter=max_jitter_factor,
        rng=rng,
        horizon_factor=horizon_factor,
        max_events=max_events,
        array_backend=array_backend,
    )
    ok = res.schedulable.reshape(b, patterns)
    return SearchOutcome(
        found=~ok.all(axis=1),
        min_slack=res.min_slack.reshape(b, patterns).min(axis=1),
        patterns_used=np.full(b, patterns, dtype=np.int64),
        rounds_run=1,
    )


def adaptive_sporadic_search_batch(
    batch: TaskSetBatch,
    fpga: Union[float, Fpga],
    scheduler: Union[str, Scheduler] = "EDF-NF",
    *,
    budget: int,
    rngs: Sequence[np.random.Generator],
    max_jitter_factor: float = 0.5,
    config: SearchConfig = SearchConfig(),
    horizon_factor: int = 20,
    max_events: int = 1_000_000,
    array_backend: Optional[str] = None,
) -> SearchOutcome:
    """Cross-entropy sporadic search over a batch (one proposal per row).

    The proposal family is constant-per-task gaps
    ``T_i * (1 + u_i * max_jitter_factor)`` (see
    :func:`release_times_from_unit`): every gap respects the minimum
    inter-arrival, so any found miss is a sound certificate.  Scored on
    the batched simulator's ``min_slack`` over schedules replayed via
    ``release_times``; the scalar twin is
    :func:`repro.sim.sporadic.adaptive_sporadic_search`.
    """
    if max_jitter_factor < 0:
        raise ValueError("max_jitter_factor must be >= 0")
    host = _host_batch(batch)
    # default_horizon_batch handles N == 0 itself (trivial zero windows).
    hz = np.asarray(
        xp.asnumpy(default_horizon_batch(host, factor=horizon_factor)),
        dtype=np.float64,
    )

    def score(live: np.ndarray, u: np.ndarray):
        live_count, patterns, n = u.shape
        fanned = _fan(_rows(host, live), patterns)
        hz_fan = np.repeat(hz[live], patterns)
        times = release_times_from_unit(
            fanned.period, u.reshape(-1, n), hz_fan, max_jitter_factor
        )
        res = simulate_batch(
            fanned,
            fpga,
            scheduler,
            release="sporadic",
            release_times=times,
            horizon=hz_fan,
            max_events=max_events,
            array_backend=array_backend,
        )
        return (
            res.min_slack.reshape(live_count, patterns),
            res.schedulable.reshape(live_count, patterns),
        )

    return adaptive_pattern_search(
        host.count, host.n_tasks, score, rngs, budget, config
    )
