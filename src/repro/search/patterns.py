"""Unit-cube -> legal release pattern mappings.

Two pattern families, both parametrized on ``u in [0, 1)`` per (row,
task) slot:

* **offsets** — ``O_i = u_i * T_i``, always in ``[0, T_i)`` (every
  assignment is a legal first-release pattern);
* **sporadic gaps** — ``g_i = T_i * (1 + u_i * jitter)``, always
  ``>= T_i`` (every schedule respects the minimum inter-arrival).  The
  adaptive family holds each task's gap constant within a pattern —
  tasks drift against each other at per-task rates, which is exactly
  the phase-alignment axis the search exploits — while the *uniform*
  sporadic search keeps the legacy per-gap jitter sampler, draw order
  pinned to :func:`repro.sim.sporadic.sample_release_schedule`.

These mappings are deliberately numpy-only (no simulator imports): the
scalar twins in :mod:`repro.sim.offsets` / :mod:`repro.sim.sporadic`
share them with the batched drivers of :mod:`repro.search.drivers`
without creating an import cycle through :mod:`repro.vector`.
"""

from __future__ import annotations

import numpy as np


def offsets_from_unit(period: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Map unit coordinates to release offsets: ``O = u * T``.

    Broadcasts, so ``period`` may be ``(..., N)`` against ``u`` of any
    compatible shape.  ``u < 1`` guarantees ``O < T`` exactly in
    float64 (monotonicity of multiplication by a positive float).
    """
    return np.asarray(u, dtype=np.float64) * np.asarray(period, dtype=np.float64)


def release_times_from_unit(
    period: np.ndarray,
    u: np.ndarray,
    horizon: np.ndarray,
    max_jitter_factor: float,
) -> np.ndarray:
    """Constant-gap sporadic schedules from unit coordinates.

    ``period`` and ``u`` are ``(R, N)``, ``horizon`` is ``(R,)``;
    returns ``(R, N, K+1)`` ascending release times — first release 0,
    gap ``T * (1 + u * max_jitter_factor)`` per task, entries at/after
    the horizon replaced by ``+inf`` with at least one trailing
    sentinel column — the layout
    :func:`repro.vector.sim_vec.simulate_batch` replays.

    Releases accumulate *additively* (``r_{k+1} = r_k + g``), matching
    the scalar sampler's arithmetic, so the gap-vs-deadline validation
    in the batched simulator holds exactly (``r + g >= r + D`` whenever
    ``g >= D`` — same left operand, monotone add).
    """
    if max_jitter_factor < 0:
        raise ValueError("max_jitter_factor must be >= 0")
    period = np.asarray(period, dtype=np.float64)
    u = np.asarray(u, dtype=np.float64)
    horizon = np.asarray(horizon, dtype=np.float64)
    if period.ndim != 2 or u.shape != period.shape:
        raise ValueError(
            f"period/u must share shape (R, N), got {period.shape}/{u.shape}"
        )
    if np.any(u < 0) or np.any(u >= 1):
        raise ValueError("unit coordinates must lie in [0, 1)")
    rows, n = period.shape
    if rows == 0 or n == 0:
        return np.full((rows, n, 1), np.inf, dtype=np.float64)
    if np.any(horizon <= 0):
        raise ValueError("horizon must be > 0")
    gap = period * (1.0 + u * max_jitter_factor)  # >= period elementwise
    releases = int(np.max(np.ceil(horizon[:, None] / gap)))
    out = np.full((rows, n, releases + 1), np.inf, dtype=np.float64)
    out[:, :, 0] = 0.0
    current = np.zeros((rows, n), dtype=np.float64)
    hz_col = horizon[:, None]
    for j in range(1, releases + 1):
        current = current + gap
        out[:, :, j] = np.where(current < hz_col, current, np.inf)
    return out


