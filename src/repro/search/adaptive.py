"""The budgeted cross-entropy search loop, pattern-family agnostic.

:func:`adaptive_pattern_search` owns the loop structure — budget split
into rounds, per-row sampling from :class:`~repro.search.proposal.
UnitProposal`, elite refitting, per-row early stop once a miss is
certified — and delegates both the unit-cube -> pattern mapping and the
simulation to a ``score_fn`` callback.  That keeps one copy of the
search logic serving four drivers: batched/scalar x offsets/sporadic
(the batched ones in :mod:`repro.search.patterns`, the scalar twins in
:mod:`repro.sim.offsets` / :mod:`repro.sim.sporadic`).

Per-row isolation is the load-bearing design point: each row has its
own generator, proposal parameters and stop decision, so the search
over a batch is *exactly* B independent single-row searches run in
lockstep — which is what makes the scalar twins bit-reproducible
against the batched drivers (same rng per row => same patterns => same
verdicts and slacks, by the simulators' parity contract).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.search.proposal import SearchConfig, UnitProposal

#: score_fn(live_rows, u) -> (slack, schedulable): simulate the
#: ``(L, P, N)`` unit-cube patterns for the live row subset and return
#: the per-pattern min-slack and verdict, both ``(L, P)``.
ScoreFn = Callable[[np.ndarray, np.ndarray], Tuple[np.ndarray, np.ndarray]]


@dataclass(frozen=True)
class SearchOutcome:
    """Per-row result of a release-pattern search (uniform or adaptive).

    ``found`` marks rows where some sampled pattern missed a deadline —
    a sound certificate of unschedulability (every sampled pattern is
    legal).  ``min_slack`` is the best-effort near-miss record over all
    patterns the row simulated (negative iff ``found``, ``+inf`` when
    nothing was simulated); callers rank surviving rows by it.
    ``patterns_used`` counts patterns actually simulated per row (early
    stop makes it vary under adaptive search).
    """

    found: np.ndarray  # (B,) bool
    min_slack: np.ndarray  # (B,) float64
    patterns_used: np.ndarray  # (B,) int64
    rounds_run: int

    @property
    def count(self) -> int:
        return int(self.found.shape[0])

    @property
    def misses_found(self) -> int:
        """Rows certified unschedulable by the search."""
        return int(self.found.sum())


def round_sizes(budget: int, rounds: int) -> List[int]:
    """Split a pattern budget across rounds (earlier rounds get the
    remainder, empty rounds are dropped): sum == budget always."""
    if budget < 0:
        raise ValueError("budget must be >= 0")
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    rounds = min(rounds, budget) or 0
    if rounds == 0:
        return []
    base, rem = divmod(budget, rounds)
    return [base + 1] * rem + [base] * (rounds - rem)


def adaptive_pattern_search(
    count: int,
    n_tasks: int,
    score_fn: ScoreFn,
    rngs: Sequence[np.random.Generator],
    budget: int,
    config: SearchConfig = SearchConfig(),
) -> SearchOutcome:
    """Search ``budget`` patterns per row, adapting proposals between
    rounds.

    Round 0 samples uniformly (pure exploration); every later round
    samples each live row's fitted proposal (with the uniform-mixture
    floor) and refits it on the round's ``elite_frac`` lowest-slack
    patterns.  A row stops as soon as one of its patterns certifies a
    miss — its remaining budget is simply not spent (``patterns_used``
    records the actual spend).

    ``rngs`` supplies one independent generator per row (see module
    docstring for why per-row streams matter); ``score_fn`` does the
    mapping + simulation and must return per-pattern ``(slack,
    schedulable)`` for the live rows it was given.
    """
    if len(rngs) != count:
        raise ValueError(f"need one rng per row: {len(rngs)} != {count}")
    found = np.zeros(count, dtype=bool)
    best = np.full(count, np.inf, dtype=np.float64)
    used = np.zeros(count, dtype=np.int64)
    if count == 0 or n_tasks == 0 or budget == 0:
        return SearchOutcome(found, best, used, 0)

    proposal = UnitProposal(count, n_tasks, config)
    rounds_run = 0
    for round_idx, patterns in enumerate(round_sizes(budget, config.rounds)):
        live = np.nonzero(~found)[0]
        if live.size == 0:
            break
        rounds_run += 1
        u = np.empty((live.size, patterns, n_tasks), dtype=np.float64)
        for k, row in enumerate(live):
            u[k] = proposal.sample_row(
                row, rngs[row], patterns, explore=round_idx == 0
            )
        slack, ok = score_fn(live, u)
        slack = np.asarray(slack, dtype=np.float64)
        ok = np.asarray(ok, dtype=bool)
        if slack.shape != (live.size, patterns) or ok.shape != slack.shape:
            raise ValueError(
                f"score_fn returned shape {slack.shape}/{ok.shape}, "
                f"expected {(live.size, patterns)}"
            )
        used[live] += patterns
        best[live] = np.minimum(best[live], slack.min(axis=1))
        row_found = ~ok.all(axis=1)
        found[live] |= row_found
        for k, row in enumerate(live):
            if not row_found[k]:
                proposal.refit_row(row, u[k], slack[k])
    return SearchOutcome(found, best, used, rounds_run)
