"""repro — reproduction of Guan et al., IPDPS 2007.

"Improved Schedulability Analysis of EDF Scheduling on Reconfigurable
Hardware Devices" derives utilization-bound schedulability tests (DP, GN1,
GN2) for global EDF scheduling of hardware tasks on 1D partially
runtime-reconfigurable FPGAs.

This package provides:

* :mod:`repro.model` — the sporadic/periodic hardware-task model ``(C, D, T, A)``.
* :mod:`repro.core` — the paper's schedulability tests (DP, GN1, GN2).
* :mod:`repro.mp` / :mod:`repro.uni` — the multiprocessor and uniprocessor
  analysis lineage the paper builds on (GFB, BCL, BAK2; PDA/QPA).
* :mod:`repro.fpga`, :mod:`repro.sched`, :mod:`repro.sim` — a 1D PRTR FPGA
  substrate, EDF-FkF / EDF-NF schedulers and a discrete-event simulator.
* :mod:`repro.gen` — synthetic taskset generators (the paper's §6 recipe).
* :mod:`repro.vector` — numpy-vectorized batch versions of the tests and a
  batched EDF simulator (``simulate_batch``: every migration mode, plus
  offset/sporadic release patterns) that lets the acceptance experiments
  simulate whole buckets — and whole pattern searches — instead of
  subsamples.
* :mod:`repro.incremental` — stateful admission analysis under taskset
  churn: per-test caches updated in O(changed·N) per add/remove/update,
  verdicts bit-identical to the scalar tests, plus batched re-verdicting
  on the vector kernels.
* :mod:`repro.experiments` — runners regenerating every table and figure.

Quickstart::

    from repro import Task, TaskSet, Fpga
    from repro.core import dp_test, gn1_test, gn2_test

    ts = TaskSet([Task(wcet=2.1, deadline=5, period=5, area=7),
                  Task(wcet=2.0, deadline=7, period=7, area=7)])
    fpga = Fpga(width=10)
    print(dp_test(ts, fpga).accepted)   # False
    print(gn2_test(ts, fpga).accepted)  # True  (Table 3 of the paper)
"""

from repro.model.task import Task, TaskSet
from repro.model.job import Job
from repro.fpga.device import Fpga

__version__ = "1.0.0"

__all__ = ["Task", "TaskSet", "Job", "Fpga", "__version__"]
