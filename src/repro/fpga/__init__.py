"""1D partially runtime-reconfigurable FPGA substrate.

The paper's platform model (§2): a device ``H`` with ``A(H)`` homogeneous
columns; a task occupies a contiguous run of ``A_k`` columns while it
executes.  This package provides the device abstraction, a contiguous
free-interval manager with classic placement policies (first/best/worst
fit), and a reconfiguration-overhead model — the last two support the
paper's §7 future-work extensions (fragmentation, non-zero reconfiguration
cost) and the corresponding ablation experiments.
"""

from repro.fpga.device import Fpga, StaticRegion
from repro.fpga.freelist import FreeList, Allocation
from repro.fpga.intervals import Interval, spans_to_words, word_count, words_to_spans
from repro.fpga.placement import PlacementPolicy, choose_interval
from repro.fpga.reconfig import ReconfigurationModel, inflate_taskset

__all__ = [
    "Fpga",
    "StaticRegion",
    "FreeList",
    "Allocation",
    "Interval",
    "PlacementPolicy",
    "choose_interval",
    "spans_to_words",
    "word_count",
    "words_to_spans",
    "ReconfigurationModel",
    "inflate_taskset",
]
