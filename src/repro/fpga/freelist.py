"""Free-interval manager for contiguous 1D column allocation.

Tracks the free/occupied state of the device's columns as a sorted list of
maximal free intervals.  The interval representation and its mutation
primitives live in :mod:`repro.fpga.intervals` — the same source of truth
the batched :class:`repro.vector.placement_vec.BatchFreeList` encodes as
per-row uint64 bitmaps — so the scalar and vectorized simulators cannot
drift apart.  Invariants (enforced, and property-tested):

* free intervals are disjoint, sorted, non-empty, and maximal (no two
  adjacent intervals touch — they would have been coalesced);
* allocations never overlap each other or static regions;
* ``total_free + sum(allocated widths)`` equals the device capacity.

Complexities are O(#intervals) per operation, which is plenty: interval
count is bounded by the number of concurrently placed jobs + 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.fpga import intervals as iv
from repro.fpga.device import Fpga
from repro.fpga.placement import PlacementPolicy, choose_interval


@dataclass(frozen=True)
class Allocation:
    """A placed block: ``width`` columns starting at ``start``."""

    key: object
    start: int
    width: int

    @property
    def end(self) -> int:
        return self.start + self.width


class FreeListError(RuntimeError):
    """Raised on misuse (double-free, unknown key, overlapping placement)."""


class FreeList:
    """Mutable contiguous-allocation state for one device."""

    def __init__(self, fpga: Fpga):
        self._fpga = fpga
        self._free: List[Tuple[int, int]] = list(fpga.free_spans())
        self._allocs: Dict[object, Allocation] = {}

    # -- queries ---------------------------------------------------------------

    @property
    def free_intervals(self) -> List[Tuple[int, int]]:
        """Sorted maximal free intervals (half-open)."""
        return list(self._free)

    @property
    def total_free(self) -> int:
        return iv.total_width(self._free)

    @property
    def largest_hole(self) -> int:
        return iv.largest_width(self._free)

    @property
    def occupied(self) -> int:
        """Columns currently allocated to jobs (excludes static regions)."""
        return sum(a.width for a in self._allocs.values())

    def allocation_of(self, key: object) -> Optional[Allocation]:
        return self._allocs.get(key)

    def can_place(self, width: int) -> bool:
        """True iff some hole is wide enough for a ``width``-column task."""
        return self.largest_hole >= width

    def is_free(self, start: int, width: int) -> bool:
        """True iff ``[start, start+width)`` lies entirely inside a free hole."""
        return iv.contains_span(self._free, start, width)

    # -- mutations ---------------------------------------------------------

    def allocate(
        self, key: object, width: int, policy: PlacementPolicy = PlacementPolicy.FIRST_FIT
    ) -> Optional[Allocation]:
        """Place ``width`` columns for ``key``; returns ``None`` if no hole fits."""
        if key in self._allocs:
            raise FreeListError(f"key {key!r} already has an allocation")
        if width <= 0:
            raise FreeListError(f"width must be >= 1, got {width}")
        start = choose_interval(self._free, width, policy)
        if start is None:
            return None
        self.allocate_at(key, start, width)
        return self._allocs[key]

    def allocate_at(self, key: object, start: int, width: int) -> Allocation:
        """Place at an explicit position (used to pin a resumed job).

        Raises :class:`FreeListError` unless ``[start, start+width)`` is
        entirely free.
        """
        if key in self._allocs:
            raise FreeListError(f"key {key!r} already has an allocation")
        try:
            self._free = iv.carve(self._free, start, width)
        except ValueError:
            raise FreeListError(f"interval [{start},{start + width}) is not free")
        alloc = Allocation(key, start, width)
        self._allocs[key] = alloc
        return alloc

    def release(self, key: object) -> None:
        """Free the allocation held by ``key``, coalescing neighbours."""
        alloc = self._allocs.pop(key, None)
        if alloc is None:
            raise FreeListError(f"no allocation for key {key!r}")
        self._free = iv.insert_coalesced(self._free, alloc.start, alloc.end)

    def release_all(self) -> None:
        """Drop every allocation (defragment to the device's free spans)."""
        self._allocs.clear()
        self._free = list(self._fpga.free_spans())

    # -- internals -----------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert structural invariants (used by tests and the simulator)."""
        iv.check_sorted_maximal(self._free, self._fpga.width)
        allocs = sorted(self._allocs.values(), key=lambda a: a.start)
        for a, b in zip(allocs, allocs[1:]):
            assert a.end <= b.start, f"allocations {a} and {b} overlap"
        assert (
            self.total_free + self.occupied == self._fpga.capacity
        ), "free + occupied != capacity"
