"""Reconfiguration-overhead model (paper §1, assumption bullet 3, and §7).

The paper assumes zero reconfiguration overhead but notes real overheads
are milliseconds, proportional to the reconfigured area, and that the
analysis "can easily take the overhead into account by adding it to the
execution time".  This module provides both halves:

* :class:`ReconfigurationModel` — overhead charged by the *simulator*
  whenever a job is (re)configured onto the fabric;
* :func:`inflate_taskset` — the *analysis-side* accounting: inflate each
  task's WCET by the worst-case number of reconfigurations it can suffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from numbers import Real

from repro.model.task import Task, TaskSet


@dataclass(frozen=True)
class ReconfigurationModel:
    """Loading a job onto the fabric costs ``base + per_column * A``.

    ``ZERO`` (the default everywhere) reproduces the paper's assumption.
    """

    base: Real = 0
    per_column: Real = 0

    def __post_init__(self) -> None:
        if self.base < 0 or self.per_column < 0:
            raise ValueError("reconfiguration costs must be >= 0")

    def load_time(self, area: Real) -> Real:
        """Time to (re)configure an ``area``-column job onto the device."""
        return self.base + self.per_column * area

    @property
    def is_zero(self) -> bool:
        return self.base == 0 and self.per_column == 0


#: The paper's assumption: reconfiguration is free.
ZERO_RECONFIG = ReconfigurationModel()


def inflate_taskset(
    taskset: TaskSet,
    model: ReconfigurationModel,
    reconfigurations_per_job: int = 1,
) -> TaskSet:
    """Charge reconfiguration overhead to execution times for analysis.

    Each job is loaded at least once; every preemption adds another load on
    resume.  ``reconfigurations_per_job`` is the bound the caller wants to
    provision for (1 = non-preemptive loading only).  This mirrors the
    response-time-analysis trick the paper cites for context-switch
    overhead in fixed-priority CPU scheduling.
    """
    if reconfigurations_per_job < 0:
        raise ValueError("reconfigurations_per_job must be >= 0")

    def inflate(t: Task) -> Task:
        overhead = model.load_time(t.area) * reconfigurations_per_job
        return t.with_wcet(t.wcet + overhead)

    return taskset.map(inflate)
