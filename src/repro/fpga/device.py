"""The 1D reconfigurable device ``H`` (paper §2).

The analysis model is minimal: the device is a row of ``A(H)`` homogeneous
columns.  The paper additionally *assumes* no pre-configured cells; real
devices have static regions (BRAM columns, soft-core CPUs), so the model
supports optional :class:`StaticRegion` blocks.  Analysis uses
:attr:`Fpga.capacity` (usable columns); the placement-aware simulator also
respects *where* the static regions sit, since they fragment the free
space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Tuple


@dataclass(frozen=True)
class StaticRegion:
    """A pre-configured block of columns unavailable for task placement."""

    start: int
    width: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"static region width must be > 0, got {self.width}")
        if self.start < 0:
            raise ValueError(f"static region start must be >= 0, got {self.start}")

    @property
    def end(self) -> int:
        """One past the last column (half-open interval)."""
        return self.start + self.width


@dataclass(frozen=True)
class Fpga:
    """A 1D reconfigurable FPGA with ``width`` columns.

    Parameters
    ----------
    width:
        Total number of columns, the paper's ``A(H)``.
    static_regions:
        Optional pre-configured blocks (must be disjoint and in-range).
        The paper assumes none; they are provided for the §7 extension
        experiments.
    """

    width: int
    static_regions: Tuple[StaticRegion, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not isinstance(self.width, int) or isinstance(self.width, bool):
            raise TypeError(f"width must be an int, got {self.width!r}")
        if self.width < 1:
            raise ValueError(f"width must be >= 1, got {self.width}")
        regions = tuple(sorted(self.static_regions, key=lambda r: r.start))
        object.__setattr__(self, "static_regions", regions)
        last_end = 0
        for r in regions:
            if r.start < last_end:
                raise ValueError(f"static regions overlap at column {r.start}")
            if r.end > self.width:
                raise ValueError(f"static region {r} exceeds device width {self.width}")
            last_end = r.end

    @property
    def area(self) -> int:
        """``A(H)`` — total column count (paper notation)."""
        return self.width

    @property
    def reserved_area(self) -> int:
        """Columns consumed by static regions."""
        return sum(r.width for r in self.static_regions)

    @property
    def capacity(self) -> int:
        """Columns available for dynamic task placement."""
        return self.width - self.reserved_area

    def free_spans(self) -> Iterable[tuple[int, int]]:
        """Maximal contiguous column spans not covered by static regions.

        Yields half-open ``(start, end)`` pairs; this seeds the simulator's
        :class:`~repro.fpga.freelist.FreeList`.
        """
        cursor = 0
        for r in self.static_regions:
            if r.start > cursor:
                yield (cursor, r.start)
            cursor = r.end
        if cursor < self.width:
            yield (cursor, self.width)

    def fits(self, area) -> bool:
        """Capacity check under unrestricted migration (paper assumption):
        a job fits iff its area is at most the usable capacity."""
        return area <= self.capacity
