"""Shared contiguous-interval representation for 1D column allocation.

Both free-space trackers in the repo — the scalar
:class:`repro.fpga.freelist.FreeList` (sorted interval lists, one device)
and the batched :class:`repro.vector.placement_vec.BatchFreeList`
(per-row ``uint64`` column bitmaps, one device per batch row) — describe
the same thing: a set of disjoint, sorted, maximal free column spans,
seeded from :meth:`repro.fpga.device.Fpga.free_spans` (so static regions
pre-fragment both representations identically).

This module is the single source of truth for that representation:

* pure interval-list primitives (:func:`insert_coalesced`,
  :func:`carve`, :func:`contains_span`, :func:`total_width`,
  :func:`largest_width`) used by the scalar ``FreeList``;
* the bitmap encoding bridge (:func:`spans_to_words`,
  :func:`words_to_spans`, :func:`word_count`) used by the vectorized
  free-list, defined so a round-trip through either encoding is the
  identity — property-tested in ``tests/test_fpga_intervals.py``.

Intervals are half-open ``(start, end)`` tuples of non-negative ints.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

Interval = Tuple[int, int]  # half-open (start, end)

#: Bits per bitmap word (the vectorized encoding packs column ``c`` into
#: bit ``c % 64`` of word ``c // 64``; bit set means *free*).
WORD_BITS = 64


def total_width(intervals: Sequence[Interval]) -> int:
    """Sum of interval widths."""
    return sum(e - s for s, e in intervals)


def largest_width(intervals: Sequence[Interval]) -> int:
    """Width of the widest interval (0 when empty)."""
    return max((e - s for s, e in intervals), default=0)


def contains_span(intervals: Sequence[Interval], start: int, width: int) -> bool:
    """True iff ``[start, start+width)`` lies entirely inside one interval."""
    end = start + width
    return any(s <= start and end <= e for s, e in intervals)


def carve(intervals: Sequence[Interval], start: int, width: int) -> List[Interval]:
    """Remove ``[start, start+width)`` from the interval set.

    The span must lie entirely inside one interval (the caller allocated
    it out of a free hole); :class:`ValueError` otherwise.  Returns a new
    sorted, maximal interval list with the hole split into up to two
    remnants.
    """
    end = start + width
    out: List[Interval] = []
    hit = False
    for s, e in intervals:
        if s <= start and end <= e:
            hit = True
            if s < start:
                out.append((s, start))
            if end < e:
                out.append((end, e))
        else:
            out.append((s, e))
    if not hit:
        raise ValueError(f"span [{start},{end}) is not inside a free interval")
    return out


def insert_coalesced(
    intervals: Sequence[Interval], start: int, end: int
) -> List[Interval]:
    """Insert ``[start, end)`` into a sorted interval list, merging with
    touching neighbours so the result stays sorted and maximal.

    The span must be disjoint from every existing interval (it was
    allocated, hence not free); overlap raises :class:`ValueError`.
    """
    if start >= end:
        raise ValueError(f"empty span [{start},{end})")
    ns, ne = start, end
    before: List[Interval] = []
    after: List[Interval] = []
    for s, e in intervals:
        if e < ns:
            before.append((s, e))
        elif s > ne:
            after.append((s, e))
        elif e == ns:  # touches on the left: coalesce
            ns = s
        elif s == ne:  # touches on the right: coalesce
            ne = e
        else:
            raise ValueError(f"span [{start},{end}) overlaps free interval ({s},{e})")
    return before + [(ns, ne)] + after


def complement(intervals: Sequence[Interval], width: int) -> List[Interval]:
    """The occupied spans of a ``width``-column device given its free spans."""
    out: List[Interval] = []
    cursor = 0
    for s, e in intervals:
        if s > cursor:
            out.append((cursor, s))
        cursor = e
    if cursor < width:
        out.append((cursor, width))
    return out


def check_sorted_maximal(intervals: Sequence[Interval], width: int) -> None:
    """Assert the structural invariants of a free-interval list."""
    prev_end = -1
    for s, e in intervals:
        assert s < e, f"empty interval ({s},{e})"
        assert s > prev_end, "intervals not sorted/maximal"
        assert 0 <= s and e <= width, f"interval ({s},{e}) outside [0,{width})"
        prev_end = e


# -- bitmap encoding bridge ---------------------------------------------------


def word_count(width: int) -> int:
    """Words needed for a ``width``-column bitmap: ``ceil(width / 64)``."""
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    return (width + WORD_BITS - 1) // WORD_BITS


def spans_to_words(spans: Iterable[Interval], width: int) -> np.ndarray:
    """Encode free spans as a ``(word_count(width),)`` uint64 bitmap.

    Bit ``c % 64`` of word ``c // 64`` is set iff column ``c`` is free.
    Columns at and beyond ``width`` are always clear, so popcounts and
    hole scans never see phantom free space past the device edge.
    """
    words = np.zeros(word_count(width), dtype=np.uint64)
    for s, e in spans:
        if not (0 <= s < e <= width):
            raise ValueError(f"span ({s},{e}) outside device [0,{width})")
        for w in range(s // WORD_BITS, (e - 1) // WORD_BITS + 1):
            lo = max(s - w * WORD_BITS, 0)
            hi = min(e - w * WORD_BITS, WORD_BITS)
            mask = ((1 << hi) - 1) ^ ((1 << lo) - 1)
            words[w] |= np.uint64(mask)
    return words


def words_to_spans(words: np.ndarray, width: int) -> List[Interval]:
    """Decode a uint64 bitmap back to sorted, maximal free spans."""
    spans: List[Interval] = []
    run_start = None
    for c in range(width):
        bit = (int(words[c // WORD_BITS]) >> (c % WORD_BITS)) & 1
        if bit and run_start is None:
            run_start = c
        elif not bit and run_start is not None:
            spans.append((run_start, c))
            run_start = None
    if run_start is not None:
        spans.append((run_start, width))
    return spans
