"""Contiguous placement policies: first-fit, best-fit, worst-fit.

Under the paper's unrestricted-migration assumption, placement is
irrelevant (a job fits iff total free area suffices).  The §7 future-work
experiments drop that assumption: a job then needs a contiguous hole, and
the choice of hole determines fragmentation.  These are the three classic
policies the paper names (§1, assumption bullet 4).

:func:`choose_interval` is the *reference* hole chooser, consumed by the
scalar :class:`repro.fpga.freelist.FreeList`; the batched simulator's
bitmap kernels (:mod:`repro.vector.placement_vec`) replicate its exact
candidate set and tie-breaks over whole batches at once and are
cross-validated against it property-by-property.  The interval
representation itself lives in :mod:`repro.fpga.intervals`.
"""

from __future__ import annotations

import enum
from typing import Optional, Sequence

from repro.fpga.intervals import Interval


class PlacementPolicy(enum.Enum):
    """Rule for choosing among candidate free holes."""

    #: Leftmost hole that fits.
    FIRST_FIT = "first-fit"
    #: Smallest hole that fits (ties: leftmost) — minimizes leftover split.
    BEST_FIT = "best-fit"
    #: Largest hole that fits (ties: leftmost) — keeps leftovers usable.
    WORST_FIT = "worst-fit"


def choose_interval(
    free: Sequence[Interval], need: int, policy: PlacementPolicy
) -> Optional[int]:
    """Pick the start column for a ``need``-wide task among ``free`` holes.

    ``free`` must be sorted, disjoint, half-open intervals.  Returns the
    chosen start column or ``None`` when no hole is wide enough (the job
    is blocked by fragmentation even if total free area suffices).
    """
    if need <= 0:
        raise ValueError(f"need must be >= 1, got {need}")
    candidates = [(s, e - s) for (s, e) in free if e - s >= need]
    if not candidates:
        return None
    if policy is PlacementPolicy.FIRST_FIT:
        return candidates[0][0]
    if policy is PlacementPolicy.BEST_FIT:
        return min(candidates, key=lambda c: (c[1], c[0]))[0]
    if policy is PlacementPolicy.WORST_FIT:
        return max(candidates, key=lambda c: (c[1], -c[0]))[0]
    raise AssertionError(f"unhandled policy {policy!r}")  # pragma: no cover
